"""Batched lane execution: N independent runs through one compiled plan.

The expensive part of a simulation campaign — the buffer estimator's
iteration loop, fault soaks, property sweeps — is rarely *one* long run;
it is many short, independent runs of the *same* design under different
stimuli or seeds ("validate many flows, not one").  This module amortizes
everything that is per-design across those runs:

- the plan (and its specialized generated code) is compiled **once** and
  shared by every lane via :func:`repro.sim.plan.shared_plan`;
- reactions go through :meth:`ReactionPlan.react_slots`, skipping the
  per-instant output-dict build of :meth:`Reactor.react`;
- recorded statuses/values are laid out as per-lane arrays — a compact
  numpy ``uint8``/``int64`` encoding when numpy is importable (every
  Signal value type is bool/int-shaped), with a pure-Python object-lane
  recorder as the always-available fallback, so numpy stays an
  *optional* dependency.  A value that does not fit the numpy encoding
  (e.g. an int beyond 64 bits) demotes the whole batch to object lanes
  mid-run without re-executing any reaction;
- a reaction is a pure function of ``(state, inputs)``, and soak lanes
  are near-copies of one another, so the scalar loop memoizes reactions
  run-wide: every lane that reaches a pair some lane already solved
  reuses the result instead of re-running the plan (pure Python — it
  speeds up the object backend just as much);
- when the plan is *unspecialized* (``REPRO_NO_SPECIALIZE``) and the
  batch is wide, execution switches to :mod:`repro.sim.vector`: one
  numpy sweep evaluates all lanes simultaneously, statuses and values
  held as ``(signal, lane)`` matrices, with per-lane scalar redo keeping
  error messages and divergent lanes byte-exact.

The oracle guarantee is unchanged: every lane produces exactly the trace
:func:`repro.sim.runner.simulate` would — same rows, same values, same
exceptions — because lanes execute the same plan sequentially with their
own state and instant index.  The win is amortization, not reordering.

Counters are merged into :data:`repro.perf.PERF` under
``batch.<plan-kind>.*`` (``batch.plan.*`` or ``batch.plan.spec.*``) plus
``batch.lanes`` / ``batch.instants``, so A11 deltas are attributable to
the path that produced them.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError
from repro.lang.analysis import flatten_program
from repro.lang.ast import Component, Program
from repro.lang.types import BOOL, EVENT, INT
from repro.perf import PERF
from repro.sim.engine import ABSENT, Oracle
from repro.sim.plan import ReactionPlan, shared_plan
from repro.sim.trace import SimTrace

#: lazy numpy probe: ``None`` unprobed, ``False`` absent, else the module
_np = None


def numpy_available() -> bool:
    """Whether the numpy lane encoding may be used.

    ``REPRO_NO_NUMPY=1`` forces the object-lane fallback (the CI leg that
    proves the fallback complete runs the whole suite this way)."""
    if os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0"):
        return False
    global _np
    if _np is None:
        try:
            import numpy

            _np = numpy
        except ImportError:
            _np = False
    return _np is not False


#: minimum lane count before the cross-lane vector executor
#: (:mod:`repro.sim.vector`) is worth its per-instant array overhead;
#: below it the scalar lane loop wins
VECTOR_MIN_LANES = 8

#: cap on distinct ``(state, inputs)`` reaction results the scalar-lane
#: memo retains per batch; past it new pairs still compute (and hit the
#: existing entries) but are not stored, bounding memory on batches whose
#: lanes never converge
MEMO_CAP = 1 << 16


class _LaneDemotion(Exception):
    """A value did not fit the numpy encoding; switch to object lanes."""


class _NumpyLane:
    """One lane's record as ``uint8`` status and ``int64`` value arrays.

    Only *canonical* values are encoded — exactly ``bool`` for
    boolean/event slots, exactly ``int`` (within 64 bits) for integer
    slots — so decoding reproduces every row byte-for-byte.  Anything
    else (an ``1`` fed to an event input, a 70-bit counter) raises
    :class:`_LaneDemotion` and the batch falls back to object lanes.
    """

    backend = "numpy"

    def __init__(self, n_signals: int, hint: Optional[int], exact):
        np = _np
        cap = hint if hint and hint > 0 else 16
        self._status = np.zeros((cap, n_signals), dtype=np.uint8)
        self._value = np.zeros((cap, n_signals), dtype=np.int64)
        self._exact = exact
        self.count = 0

    def _grow(self) -> None:
        np = _np
        self._status = np.concatenate([self._status, np.zeros_like(self._status)])
        self._value = np.concatenate([self._value, np.zeros_like(self._value)])

    def record_raw(self, status_col, value_col) -> None:
        """Record one instant straight from vector-executor lane columns.

        The columns are trusted: the vector executor only produces
        canonical int64-encodable values (anything else bails to the
        scalar path before reaching a recorder)."""
        t = self.count
        if t == len(self._status):
            self._grow()
        self._status[t] = status_col
        self._value[t] = value_col
        self.count = t + 1

    def record(self, statuses: List[int], values: List[object]) -> None:
        t = self.count
        if t == len(self._status):
            self._grow()
        self._status[t] = statuses
        row = self._value[t]
        exact = self._exact
        try:
            for i, s in enumerate(statuses):
                if s == 1:
                    v = values[i]
                    if v.__class__ is not exact[i]:
                        raise _LaneDemotion()
                    row[i] = v
        except (OverflowError, TypeError, ValueError):
            # leave the half-written row behind; the driver re-records this
            # instant on the object lane it converts us into
            raise _LaneDemotion()
        self.count = t + 1

    def rows(self, names: Sequence[str], conv) -> Iterable[Dict[str, object]]:
        status = self._status
        value = self._value
        for t in range(self.count):
            st = status[t]
            vals = value[t]
            yield {
                names[i]: conv[i](vals[i])
                for i in range(len(names))
                if st[i] == 1
            }

    def presence_count(self, i: int) -> int:
        return int((self._status[: self.count, i] == 1).sum())

    def max_value(self, i: int, default, conv):
        mask = self._status[: self.count, i] == 1
        if not mask.any():
            return default
        return conv(self._value[: self.count, i][mask].max())


class _ObjectLane:
    """One lane's record as materialized present-value row dicts."""

    backend = "object"

    def __init__(self, n_signals: int, hint: Optional[int]):
        self._rows: List[Dict[str, object]] = []

    @property
    def count(self) -> int:
        return len(self._rows)

    def record_row(self, row: Dict[str, object]) -> None:
        self._rows.append(row)

    def rows(self, names: Sequence[str], conv) -> Iterable[Dict[str, object]]:
        return iter(self._rows)

    def presence_count_by_name(self, name: str) -> int:
        return sum(1 for row in self._rows if name in row)

    def max_value_by_name(self, name: str, default):
        best = default
        seen = False
        for row in self._rows:
            if name in row:
                v = row[name]
                if not seen or v > best:
                    best = v
                    seen = True
        return best


class BatchReport:
    """The result of :func:`simulate_batch`.

    ``traces`` materializes one :class:`~repro.sim.trace.SimTrace` per
    lane, row-identical to what :func:`repro.sim.runner.simulate` would
    have produced for that lane alone.  The aggregation helpers
    (:meth:`max_values`, :meth:`presence_counts`) read the lane arrays
    directly — vectorized on the numpy backend — without building row
    dicts.
    """

    def __init__(self, plan, lanes, errors, elapsed, backend, conv, stats):
        self._plan = plan
        self._lanes = lanes
        self._conv = conv
        self.errors: Tuple[Optional[Tuple[str, str]], ...] = tuple(errors)
        self.elapsed = elapsed
        self.backend = backend
        self.stats: Dict[str, object] = stats
        self._traces: Optional[Tuple[SimTrace, ...]] = None

    @property
    def lanes(self) -> int:
        return len(self._lanes)

    def instants(self, lane: int) -> int:
        return self._lanes[lane].count

    @property
    def traces(self) -> Tuple[SimTrace, ...]:
        if self._traces is None:
            names = self._plan.names
            conv = self._conv
            out = []
            for k, lane in enumerate(self._lanes):
                trace = SimTrace()
                for row in lane.rows(names, conv):
                    trace.instants.append(row)
                trace.stats["instants"] = len(trace)
                trace.stats["lane"] = k
                out.append(trace)
            self._traces = tuple(out)
        return self._traces

    def max_values(self, name: str, default=0) -> List[object]:
        """Per lane, the maximum present value of ``name`` (``default``
        when the signal never occurs in that lane)."""
        i = self._plan.slot[name]
        conv = self._conv[i]
        out = []
        for lane in self._lanes:
            if lane.backend == "numpy":
                out.append(lane.max_value(i, default, conv))
            else:
                out.append(lane.max_value_by_name(name, default))
        return out

    def presence_counts(self, name: str) -> List[int]:
        """Per lane, how many instants ``name`` is present."""
        i = self._plan.slot[name]
        out = []
        for lane in self._lanes:
            if lane.backend == "numpy":
                out.append(lane.presence_count(i))
            else:
                out.append(lane.presence_count_by_name(name))
        return out

    def __repr__(self) -> str:
        return "BatchReport({} lanes, {} backend, {:.3f}s)".format(
            self.lanes, self.backend, self.elapsed
        )


def _converters(plan: ReactionPlan):
    """Per-slot ``(decode, exact-class)`` for the int64 lane encoding."""
    types = plan.component.signals()
    conv = []
    exact = []
    for name in plan.names:
        t = types[name]
        if t == INT:
            conv.append(int)
            exact.append(int)
        elif t in (BOOL, EVENT):
            conv.append(lambda v: bool(v))
            exact.append(bool)
        else:  # unknown/extension type: no numpy encoding guarantee
            conv.append(None)
            exact.append(None)
    return conv, exact


def _materialize_row(names, statuses, values) -> Dict[str, object]:
    return {
        names[i]: values[i] for i in range(len(names)) if statuses[i] == 1
    }


def simulate_batch(
    design: Union[Component, Program],
    stimuli: Iterable[Iterable[Mapping[str, object]]],
    n: Optional[int] = None,
    oracle: Union[Oracle, Sequence[Optional[Oracle]], None] = None,
    plan: Optional[ReactionPlan] = None,
    specialize: Optional[bool] = None,
    capture_errors: bool = False,
) -> BatchReport:
    """Run every stimulus in ``stimuli`` as an independent *lane* of one
    shared compiled plan.

    Each lane starts from the initial state and keeps its own instant
    index, so its trace is identical to a standalone
    :func:`~repro.sim.runner.simulate` run.  ``oracle`` is either one
    callable shared by all lanes (invoked with each lane's own instant
    index) or a sequence with one entry per lane.  ``plan`` overrides the
    process-wide :func:`~repro.sim.plan.shared_plan` cache lookup;
    ``specialize`` is forwarded to it (``None`` = specialize unless
    ``REPRO_NO_SPECIALIZE`` is set).

    With ``capture_errors`` a lane that raises
    :class:`~repro.errors.SimulationError` records ``(type name,
    message)`` in ``report.errors`` and stops, leaving the other lanes to
    finish; by default the error propagates exactly as ``simulate``'s
    would.
    """
    comp = flatten_program(design) if isinstance(design, Program) else design
    if plan is None:
        plan = shared_plan(comp, specialize=specialize)
    n_signals = plan.n_signals
    conv, exact = _converters(plan)
    use_numpy = numpy_available() and all(c is not None for c in conv)

    lane_stimuli = list(stimuli)
    if callable(oracle) or oracle is None:
        oracles: List[Optional[Oracle]] = [oracle] * len(lane_stimuli)
    else:
        oracles = list(oracle)
        if len(oracles) != len(lane_stimuli):
            raise ValueError(
                "need one oracle per lane: {} oracles for {} lanes".format(
                    len(oracles), len(lane_stimuli)
                )
            )

    base = plan.counters_snapshot()
    start = time.perf_counter()
    mode = "scalar"
    lanes: List[object] = []
    errors: List[Optional[Tuple[str, str]]] = []
    if (
        use_numpy
        and plan.kind == "plan"
        and len(lane_stimuli) >= VECTOR_MIN_LANES
        and all(o is None for o in oracles)
    ):
        # The cross-lane vector executor replaces per-lane closure sweeps
        # with one numpy sweep over all lanes; it pays off when the plan
        # is *not* specialized (REPRO_NO_SPECIALIZE, or a fallback from
        # codegen).  With generated code available, the memoized scalar
        # loop below is faster still, so it stays the default.
        from repro.sim.vector import VectorBail, vector_executor

        vx = vector_executor(plan, exact, _np)
        if vx is not None:
            # materialized rows make the batch restartable if the vector
            # path bails (wide values, non-canonical inputs, ...)
            rows_per_lane = [
                list(s) if n is None else list(itertools.islice(s, n))
                for s in lane_stimuli
            ]
            lanes = [_NumpyLane(n_signals, n, exact) for _ in rows_per_lane]
            errors = [None] * len(rows_per_lane)
            try:
                vx.run_batch(
                    rows_per_lane, capture_errors, lanes, errors, _LaneDemotion
                )
                mode = "vector"
            except VectorBail:
                lane_stimuli = [iter(rows) for rows in rows_per_lane]
                lanes = []
                errors = []
    memo_hits = 0
    if mode != "vector":
        lanes, errors, use_numpy, memo_hits = _run_scalar_lanes(
            plan, lane_stimuli, oracles, n, capture_errors, use_numpy, exact
        )
    elapsed = time.perf_counter() - start

    total = sum(lane.count for lane in lanes)
    delta = {
        key: value - base.get(key, 0)
        for key, value in plan.counters_snapshot().items()
    }
    PERF.merge(delta, prefix="batch." + plan.kind)
    PERF.incr("batch.runs")
    PERF.incr("batch.lanes", len(lanes))
    PERF.incr("batch.instants", total)
    if mode == "vector":
        PERF.incr("batch.vector_runs")
    if memo_hits:
        PERF.incr("batch.memo_hits", memo_hits)
    PERF.add_time("sim.batch", elapsed)
    backend = "numpy" if use_numpy else "object"
    stats: Dict[str, object] = {
        "lanes": len(lanes),
        "instants": total,
        "elapsed": elapsed,
        "backend": backend,
        "mode": mode,
        "memo_hits": memo_hits,
    }
    stats.update(delta)
    return BatchReport(plan, lanes, errors, elapsed, backend, conv, stats)


def _run_scalar_lanes(
    plan, lane_stimuli, oracles, n, capture_errors, use_numpy, exact
):
    """The lane-major scalar loop (also the vector path's fallback).

    Lanes in a soak campaign are near-copies of each other — the same
    base schedule with per-lane jitter — so at any instant only a handful
    of distinct ``(state, inputs)`` pairs exist across the whole batch.
    A reaction is a pure function of that pair (:meth:`react_slots`
    builds fresh status/value/state lists and reads the instant index
    only through the oracle), so a run-wide memo shares one reaction
    across every lane that reaches the same pair.  Oracle-driven lanes
    and unhashable values fall through to a plain reaction.
    """
    names = plan.names
    n_signals = plan.n_signals
    conv, _ = _converters(plan)
    lanes: List[object] = []
    errors: List[Optional[Tuple[str, str]]] = []
    react_slots = plan.react_slots
    init_state = list(plan.init_state)
    memo: Dict[object, tuple] = {}
    memo_hits = 0
    for stimulus, lane_oracle in zip(lane_stimuli, oracles):
        lane = (
            _NumpyLane(n_signals, n, exact)
            if use_numpy
            else _ObjectLane(n_signals, n)
        )
        state = init_state[:]
        index = 0
        error = None
        rows = stimulus if n is None else itertools.islice(stimulus, n)
        for inputs in rows:
            try:
                hit = key = None
                if lane_oracle is None:
                    try:
                        items = sorted(inputs.items())
                        # classes are part of the key: ``1 == True`` but
                        # the two record differently, and recorded rows
                        # must stay byte-identical per lane
                        key = (
                            tuple(state),
                            tuple(v.__class__ for v in state),
                            tuple(items),
                            tuple(v.__class__ for _, v in items),
                        )
                        hit = memo.get(key)
                    except TypeError:  # unhashable state or input value
                        key = None
                if hit is not None:
                    statuses, values, state = hit
                    memo_hits += 1
                else:
                    statuses, values, state = react_slots(
                        inputs, state, lane_oracle, index, ABSENT
                    )
                    if key is not None and len(memo) < MEMO_CAP:
                        memo[key] = (statuses, values, state)
            except SimulationError as exc:
                if not capture_errors:
                    raise
                error = (type(exc).__name__, str(exc))
                break
            index += 1
            if lane.backend == "object":
                lane.record_row(_materialize_row(names, statuses, values))
            else:
                try:
                    lane.record(statuses, values)
                except _LaneDemotion:
                    # demote every lane (recorded data converts without
                    # re-running a single reaction) and re-record this
                    # instant on the object lane
                    use_numpy = False
                    lanes = [_demote(l, names, conv, n) for l in lanes]
                    lane = _demote(lane, names, conv, n)
                    lane.record_row(_materialize_row(names, statuses, values))
        lanes.append(lane)
        errors.append(error)
    return lanes, errors, use_numpy, memo_hits


def _demote(lane, names, conv, hint) -> _ObjectLane:
    """Convert a recorded numpy lane into an object lane in place."""
    if lane.backend == "object":
        return lane
    out = _ObjectLane(len(names), hint)
    for row in lane.rows(names, conv):
        out.record_row(row)
    return out


__all__ = [
    "BatchReport",
    "numpy_available",
    "simulate_batch",
]
