"""Operational (reaction-based) simulator for Signal components.

The engine executes one *reaction* (synchronous instant) at a time: given
the presence/values of inputs, it solves the equations by monotone
constraint propagation over a four-valued presence domain (unknown,
present, absent, constant), mirroring how the Polychrony compiler's clock
calculus resolves instants.  See :mod:`repro.sim.engine`.

- :class:`~repro.sim.engine.Reactor` — compiled component + reaction solver
- :class:`~repro.sim.plan.ReactionPlan` — the pre-compiled evaluation
  schedule behind the reactor's fast path (see docs/performance.md)
- :class:`~repro.sim.trace.SimTrace` — recorded run, convertible to a
  tagged :class:`~repro.tags.behavior.Behavior`
- :mod:`repro.sim.stimuli` — stimulus constructors (periodic, bursty, ...)
- :func:`~repro.sim.runner.simulate` — convenience driver
"""

from repro.sim.engine import ABSENT, Reactor
from repro.sim.plan import ReactionPlan, shared_plan
from repro.sim.specialize import SpecializedPlan, specialize
from repro.sim.batch import BatchReport, simulate_batch
from repro.sim.trace import SimTrace
from repro.sim.runner import simulate
from repro.sim import stimuli

__all__ = [
    "ABSENT",
    "BatchReport",
    "ReactionPlan",
    "Reactor",
    "SimTrace",
    "SpecializedPlan",
    "shared_plan",
    "simulate",
    "simulate_batch",
    "specialize",
    "stimuli",
]
