"""Lockstep co-simulation of two designs.

Runs two components/programs against the *same* stimulus, reaction by
reaction, comparing their (projected) outputs at every instant.  This is
the simulation-level counterpart of
:func:`repro.mc.equiv.trace_equivalent`: no state-space bound, any data
domain, but only the behaviors the stimulus exercises.

Typical uses: validating an optimization pass
(``optimize_component``) or a hand refactoring against the original, and
regression-pinning a transformed design on recorded workloads.
"""

from __future__ import annotations

import itertools
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Union,
)

from repro.errors import SimulationError
from repro.lang.analysis import flatten_program
from repro.lang.ast import Component, Program
from repro.sim.engine import Reactor
from repro.sim.trace import SimTrace

if TYPE_CHECKING:
    from repro.tags.behavior import Behavior

View = Callable[[Dict[str, object]], Dict[str, object]]


class Mismatch(NamedTuple):
    instant: int
    inputs: Dict[str, object]
    left: Optional[Dict[str, object]]    # None: reaction rejected
    right: Optional[Dict[str, object]]

    def render(self) -> str:
        return (
            "instant {}: inputs={}\n  left : {}\n  right: {}".format(
                self.instant, self.inputs,
                self.left if self.left is not None else "<rejected>",
                self.right if self.right is not None else "<rejected>",
            )
        )


class CosimReport(NamedTuple):
    instants: int
    mismatches: List[Mismatch]
    left_trace: SimTrace
    right_trace: SimTrace

    @property
    def equivalent(self) -> bool:
        return not self.mismatches


def _as_component(design: Union[Component, Program]) -> Component:
    return flatten_program(design) if isinstance(design, Program) else design


def _shared_outputs_view(left: Component, right: Component) -> View:
    shared = frozenset(left.outputs) & frozenset(right.outputs)

    def view(out: Dict[str, object]) -> Dict[str, object]:
        return {k: v for k, v in out.items() if k in shared}

    return view


class Cosim:
    """Two reactors advanced in lockstep.

    ``view`` projects each reaction's outputs before comparison; by
    default the outputs declared by *both* designs are compared (extra
    signals on either side are ignored).
    """

    def __init__(
        self,
        left: Union[Component, Program],
        right: Union[Component, Program],
        view: Optional[View] = None,
        oracle=None,
        specialize: bool = False,
    ):
        lc, rc = _as_component(left), _as_component(right)
        missing = set(lc.inputs) ^ set(rc.inputs)
        if missing:
            raise ValueError(
                "designs disagree on inputs: {}".format(sorted(missing))
            )
        self.left = Reactor(lc, oracle=oracle, specialize=specialize)
        self.right = Reactor(rc, oracle=oracle, specialize=specialize)
        self.view = view or _shared_outputs_view(lc, rc)
        self.instant = 0

    def step(self, inputs: Dict[str, object]):
        """One lockstep reaction; returns ``(left, right, mismatch|None)``.

        A design rejecting the reaction (clock violation) counts as a
        mismatch unless both reject.
        """
        try:
            lo = self.left.react(inputs)
        except SimulationError:
            lo = None
        try:
            ro = self.right.react(inputs)
        except SimulationError:
            ro = None
        mismatch = None
        lv = self.view(lo) if lo is not None else None
        rv = self.view(ro) if ro is not None else None
        if lv != rv:
            mismatch = Mismatch(self.instant, dict(inputs), lv, rv)
        self.instant += 1
        return lo, ro, mismatch

    def run(
        self,
        stimulus: Iterable[Dict[str, object]],
        n: Optional[int] = None,
        stop_at_first: bool = False,
    ) -> CosimReport:
        rows = stimulus if n is None else itertools.islice(stimulus, n)
        lt, rt = SimTrace(), SimTrace()
        mismatches: List[Mismatch] = []
        count = 0
        for row in rows:
            lo, ro, mismatch = self.step(row)
            lt.append(lo or {})
            rt.append(ro or {})
            count += 1
            if mismatch is not None:
                mismatches.append(mismatch)
                if stop_at_first:
                    break
        return CosimReport(count, mismatches, lt, rt)


def cosimulate(
    left: Union[Component, Program],
    right: Union[Component, Program],
    stimulus: Iterable[Dict[str, object]],
    n: Optional[int] = None,
    view: Optional[View] = None,
    specialize: bool = False,
) -> CosimReport:
    """One-shot co-simulation; see :class:`Cosim`."""
    return Cosim(left, right, view=view, specialize=specialize).run(stimulus, n=n)


# -- flow-level divergence classification ------------------------------------
#
# Lockstep cosim compares instant by instant; runs of the *asynchronous*
# network have no common instants, so the fault-soak harness compares the
# per-signal flows (value sequences, timing erased — Definition 4) of a
# reference run and a faulted run and names the kind of divergence.

#: Possible per-signal verdicts of :func:`classify_flow_divergence`.
FLOW_EQUIVALENT = "flow-equivalent"
LOST = "lost"                      # subject flow is a proper subsequence
DUPLICATED = "duplicated"          # reference flow is a proper subsequence
ORDER_DIVERGENT = "order-divergent"  # same multiset, different order
VALUE_DIVERGENT = "value-divergent"  # different values altogether


def _is_subsequence(short: Sequence, long: Sequence) -> bool:
    it = iter(long)
    return all(any(x == y for y in it) for x in short)


def classify_flow_divergence(reference: Sequence, subject: Sequence) -> str:
    """Name how ``subject``'s flow diverges from ``reference``'s.

    Flows are per-signal value sequences (timing erased).  Identical
    flows are :data:`FLOW_EQUIVALENT` — by Definition 4 the two behaviors
    restricted to this signal admit a common relaxation.
    """
    reference, subject = list(reference), list(subject)
    if reference == subject:
        return FLOW_EQUIVALENT
    if len(subject) < len(reference) and _is_subsequence(subject, reference):
        return LOST
    if len(subject) > len(reference) and _is_subsequence(reference, subject):
        return DUPLICATED
    if sorted(map(repr, reference)) == sorted(map(repr, subject)):
        return ORDER_DIVERGENT
    return VALUE_DIVERGENT


def compare_flows(
    reference: "Behavior",
    subject: "Behavior",
    signals: Optional[Iterable[str]] = None,
) -> Dict[str, str]:
    """Per-signal divergence classes between two behaviors.

    ``signals`` defaults to the union of both domains; a signal missing
    on one side compares against the empty flow.
    """
    if signals is None:
        names = sorted(set(reference.vars()) | set(subject.vars()))
    else:
        names = list(signals)
    out: Dict[str, str] = {}
    for name in names:
        ref = reference[name].values() if name in reference else ()
        sub = subject[name].values() if name in subject else ()
        out[name] = classify_flow_divergence(ref, sub)
    return out
