"""Value Change Dump (VCD) export of simulation traces.

Maps the polychronous trace onto the classic EDA waveform format so runs
can be inspected in GTKWave & co.:

- one VCD time unit per reaction instant;
- boolean signals are 1-bit wires, integers 32-bit vectors, events are
  VCD ``event`` vars (momentary blips);
- *absence* — which VCD has no native notion of — is encoded as the
  unknown value ``x`` for wires/vectors, so a signal's waveform shows
  exactly the instants where it was present.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.lang.ast import Component
from repro.lang.types import BOOL, EVENT, INT
from repro.sim.trace import SimTrace

_ID_ALPHABET = [chr(c) for c in range(33, 127)]


def _id_code(index: int) -> str:
    """Short printable identifier codes: !, ", ..., !!, !", ..."""
    digits = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, len(_ID_ALPHABET))
        digits.append(_ID_ALPHABET[rem])
    return "".join(reversed(digits))


def _kind_of_values(values: Sequence[object]) -> str:
    if values and all(v is True for v in values):
        return "event"
    if all(isinstance(v, bool) for v in values):
        return "wire1"
    return "vector"


def _kind_of_type(ty) -> str:
    if ty is EVENT:
        return "event"
    if ty is BOOL:
        return "wire1"
    if ty is INT:
        return "vector"
    return "vector"


def to_vcd(
    trace: SimTrace,
    component: Optional[Component] = None,
    signals: Optional[Iterable[str]] = None,
    module: str = "top",
    timescale: str = "1 ns",
    width: int = 32,
) -> str:
    """Render ``trace`` as a VCD document (returned as a string).

    ``component`` supplies declared types (recommended — without it the
    per-signal kind is inferred from the observed values, so an
    all-``True`` boolean would render as an event).  ``signals`` selects
    and orders the dumped signals.
    """
    names = list(signals) if signals is not None else trace.signals()
    types = component.signals() if component is not None else {}
    kinds: Dict[str, str] = {}
    for name in names:
        if name in types:
            kinds[name] = _kind_of_type(types[name])
        else:
            kinds[name] = _kind_of_values(trace.values(name))
    codes = {name: _id_code(i) for i, name in enumerate(names)}

    lines = [
        "$comment repro polychronous trace $end",
        "$timescale {} $end".format(timescale),
        "$scope module {} $end".format(module),
    ]
    for name in names:
        kind = kinds[name]
        if kind == "event":
            lines.append("$var event 1 {} {} $end".format(codes[name], name))
        elif kind == "wire1":
            lines.append("$var wire 1 {} {} $end".format(codes[name], name))
        else:
            lines.append("$var wire {} {} {} $end".format(width, codes[name], name))
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    def value_tokens(name: str, value, present: bool):
        kind = kinds[name]
        code = codes[name]
        if kind == "event":
            return ["1{}".format(code)] if present else []
        if kind == "wire1":
            if not present:
                return ["x{}".format(code)]
            return ["{}{}".format(1 if value else 0, code)]
        if not present:
            return ["bx {}".format(code)]
        v = int(value)
        if v < 0:
            v &= (1 << width) - 1  # two's complement
        return ["b{:b} {}".format(v, code)]

    # initial dump: everything absent/unknown
    lines.append("$dumpvars")
    for name in names:
        lines.extend(value_tokens(name, None, False))
    lines.append("$end")

    last_present: Dict[str, object] = {name: ("absent",) for name in names}
    for t, row in enumerate(trace.instants):
        changes = []
        for name in names:
            present = name in row
            state = (row[name],) if present else ("absent",)
            if kinds[name] == "event":
                # events re-fire at every presence
                if present:
                    changes.extend(value_tokens(name, row[name], True))
                last_present[name] = state
                continue
            if state != last_present[name]:
                changes.extend(
                    value_tokens(name, row.get(name), present)
                )
                last_present[name] = state
        if changes:
            lines.append("#{}".format(t))
            lines.extend(changes)
    lines.append("#{}".format(len(trace.instants)))
    return "\n".join(lines) + "\n"


def write_vcd(path: str, trace: SimTrace, **kwargs) -> None:
    """Write :func:`to_vcd` output to ``path``."""
    with open(path, "w") as f:
        f.write(to_vcd(trace, **kwargs))
