"""Shared sweep executor for multi-point experiments.

Every experiment in this repo that walks a parameter grid — capacity
sweeps in :func:`repro.desync.verification.verified_buffer_sizes`, the
rate/burst/drop/jitter scenario sweeps of
:mod:`repro.workloads.scenarios`, the benchmark grids under
``benchmarks/`` — used to hand-roll the same loop.  :func:`sweep` is
that loop, once: it runs one function over a list of points, optionally
across a process pool, and returns per-point values, wall times and
perf-counter deltas in **submission order** regardless of completion
order or worker count.  A deterministic task function therefore yields
byte-identical results at any ``workers`` setting (benchmarked by A8).

Counter aggregation: each task's :data:`repro.perf.PERF` activity is
captured as a delta (worker processes reset their registry per task; the
sequential path diffs snapshots) and attached to its
:class:`TaskResult`.  Parallel deltas are folded back into the
coordinator's registry, so ``PERF`` reads the same whether a sweep ran
on one core or sixteen — closing the "worker counters are not
aggregated" gap the compiler's ad-hoc pool had.

Requirements for ``workers > 1``: ``fn`` must be a module-level function
and ``items`` (plus the optional ``shared`` context, sent once per
worker) must pickle.  Lambdas and closures still work sequentially.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.perf import PERF


class TaskResult(NamedTuple):
    """One sweep point: its position, return value, wall time, and the
    perf-counter delta its execution produced."""

    index: int
    value: Any
    seconds: float
    counters: Dict[str, Any]


class SweepReport(NamedTuple):
    """Everything a sweep run produced, in submission order."""

    results: Tuple[TaskResult, ...]
    seconds: float
    workers: int

    def values(self) -> List[Any]:
        """Task return values, in submission order."""
        return [r.value for r in self.results]

    def totals(self) -> Dict[str, Any]:
        """Per-task counters summed across the sweep."""
        out: Dict[str, Any] = {}
        for r in self.results:
            for key, val in r.counters.items():
                prev = out.get(key, 0)
                out[key] = round(prev + val, 6) if isinstance(val, float) else prev + val
        return out


class _NoShared:
    def __repr__(self) -> str:  # pragma: no cover
        return "<no shared context>"


_NO_SHARED = _NoShared()

# worker-process state, installed by the pool initializer
_worker_fn: Optional[Callable] = None
_worker_shared: Any = _NO_SHARED


def _init_worker(fn: Callable, shared: Any, has_shared: bool) -> None:
    global _worker_fn, _worker_shared
    _worker_fn = fn
    _worker_shared = shared if has_shared else _NO_SHARED


def _call(fn: Callable, shared: Any, item: Any) -> Any:
    if shared is not _NO_SHARED:
        return fn(shared, item)
    return fn(item)


def _run_task(index: int, item: Any) -> TaskResult:
    """Executed in a worker: run one point with a clean counter registry
    so its snapshot is exactly this task's delta."""
    PERF.reset()
    t0 = time.perf_counter()
    value = _call(_worker_fn, _worker_shared, item)
    seconds = time.perf_counter() - t0
    return TaskResult(index, value, seconds, PERF.snapshot())


def _snapshot_delta(
    after: Dict[str, Any], before: Dict[str, Any]
) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, val in after.items():
        delta = val - before.get(key, 0)
        if delta:
            out[key] = round(delta, 6) if isinstance(delta, float) else delta
    return out


def _merge_back(counters: Dict[str, Any]) -> None:
    """Fold a worker's per-task delta into the coordinator's registry."""
    PERF.merge({k: v for k, v in counters.items() if isinstance(v, int)})
    for key, val in counters.items():
        if key.startswith("time.") and isinstance(val, float):
            PERF.add_time(key[len("time."):], val)


def sweep(
    fn: Callable,
    items: Iterable[Any],
    workers: Optional[int] = None,
    shared: Any = _NO_SHARED,
) -> SweepReport:
    """Run ``fn`` over every item; return a :class:`SweepReport`.

    ``fn(item)`` — or ``fn(shared, item)`` when a ``shared`` context is
    given — is called once per point.  ``workers=None`` (or ``<= 1``)
    runs sequentially in-process; larger values fan out over a
    ``ProcessPoolExecutor`` with ``shared`` shipped once per worker via
    the pool initializer.  Results always come back in submission
    order, and each worker's perf-counter deltas are merged into the
    coordinating process's :data:`repro.perf.PERF`.
    """
    points = list(items)
    has_shared = shared is not _NO_SHARED
    n_workers = 1 if workers is None else max(1, min(workers, len(points) or 1))
    t0 = time.perf_counter()
    results: List[TaskResult] = []
    if n_workers <= 1:
        for index, item in enumerate(points):
            before = PERF.snapshot()
            t_task = time.perf_counter()
            value = _call(fn, shared, item)
            seconds = time.perf_counter() - t_task
            results.append(
                TaskResult(
                    index,
                    value,
                    seconds,
                    _snapshot_delta(PERF.snapshot(), before),
                )
            )
    else:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(fn, shared if has_shared else None, has_shared),
        ) as pool:
            futures = [
                pool.submit(_run_task, index, item)
                for index, item in enumerate(points)
            ]
            # collecting in submission order makes the report (and any
            # fold over it) independent of completion order
            results = [f.result() for f in futures]
        for r in results:
            _merge_back(r.counters)
    total = time.perf_counter() - t0
    PERF.incr("sweep.runs")
    PERF.incr("sweep.tasks", len(results))
    PERF.add_time("sweep.run", total)
    return SweepReport(tuple(results), total, n_workers)
