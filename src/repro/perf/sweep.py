"""Shared sweep executor for multi-point experiments.

Every experiment in this repo that walks a parameter grid — capacity
sweeps in :func:`repro.desync.verification.verified_buffer_sizes`, the
rate/burst/drop/jitter scenario sweeps of
:mod:`repro.workloads.scenarios`, the benchmark grids under
``benchmarks/`` — used to hand-roll the same loop.  :func:`sweep` is
that loop, once: it runs one function over a list of points, optionally
across a process pool, and returns per-point values, wall times and
perf-counter deltas in **submission order** regardless of completion
order or worker count.  A deterministic task function therefore yields
byte-identical results at any ``workers`` setting (benchmarked by A8).

Counter aggregation: each task's :data:`repro.perf.PERF` activity is
captured as a delta (worker processes reset their registry per task; the
sequential path diffs snapshots) and attached to its
:class:`TaskResult`.  Parallel deltas are folded back into the
coordinator's registry, so ``PERF`` reads the same whether a sweep ran
on one core or sixteen — closing the "worker counters are not
aggregated" gap the compiler's ad-hoc pool had.

Requirements for ``workers > 1``: ``fn`` must be a module-level function
and ``items`` (plus the optional ``shared`` context, sent once per
worker) must pickle.  Lambdas and closures still work sequentially.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.perf import PERF


class TaskResult(NamedTuple):
    """One sweep point: its position, return value, wall time, the
    perf-counter delta its execution produced, and — when the sweep ran
    with ``on_error="capture"`` — the error that ended it (``None`` for a
    successful task; a captured task's ``value`` is ``None``)."""

    index: int
    value: Any
    seconds: float
    counters: Dict[str, Any]
    error: Optional[str] = None


class SweepReport(NamedTuple):
    """Everything a sweep run produced, in submission order."""

    results: Tuple[TaskResult, ...]
    seconds: float
    workers: int

    def values(self) -> List[Any]:
        """Task return values, in submission order."""
        return [r.value for r in self.results]

    def errors(self) -> List[Tuple[int, str]]:
        """Captured per-task errors, in submission order."""
        return [(r.index, r.error) for r in self.results if r.error]

    def totals(self) -> Dict[str, Any]:
        """Per-task counters summed across the sweep.

        Accumulation is exact; float totals are rounded once at the end
        (rounding on every addition used to compound error across large
        sweeps)."""
        out: Dict[str, Any] = {}
        for r in self.results:
            for key, val in r.counters.items():
                out[key] = out.get(key, 0) + val
        return {
            key: round(val, 6) if isinstance(val, float) else val
            for key, val in out.items()
        }


class _NoShared:
    def __repr__(self) -> str:  # pragma: no cover
        return "<no shared context>"


_NO_SHARED = _NoShared()

# worker-process state, installed by the pool initializer
_worker_fn: Optional[Callable] = None
_worker_shared: Any = _NO_SHARED


def _init_worker(fn: Callable, shared: Any, has_shared: bool) -> None:
    global _worker_fn, _worker_shared
    _worker_fn = fn
    _worker_shared = shared if has_shared else _NO_SHARED


def _call(fn: Callable, shared: Any, item: Any) -> Any:
    if shared is not _NO_SHARED:
        return fn(shared, item)
    return fn(item)


def _format_error(exc: BaseException) -> str:
    return "{}: {}".format(type(exc).__name__, exc)


def _run_task(index: int, item: Any, capture_errors: bool = False) -> TaskResult:
    """Executed in a worker: run one point with a clean counter registry
    so its snapshot is exactly this task's delta."""
    PERF.reset()
    t0 = time.perf_counter()
    value = None
    error = None
    if capture_errors:
        try:
            value = _call(_worker_fn, _worker_shared, item)
        except Exception as exc:
            error = _format_error(exc)
    else:
        value = _call(_worker_fn, _worker_shared, item)
    seconds = time.perf_counter() - t0
    return TaskResult(index, value, seconds, PERF.snapshot(), error)


def _snapshot_delta(
    after: Dict[str, Any], before: Dict[str, Any]
) -> Dict[str, Any]:
    """Per-key difference of two snapshots, exact until a single final
    rounding.  Keys present only in ``before`` (a counter that shrank or
    vanished, e.g. after a mid-task ``PERF.reset()``) yield negative
    deltas rather than being silently dropped."""
    out: Dict[str, Any] = {}
    for key in sorted(set(after) | set(before)):
        delta = after.get(key, 0) - before.get(key, 0)
        if delta:
            out[key] = round(delta, 6) if isinstance(delta, float) else delta
    return out


def _merge_back(counters: Dict[str, Any]) -> None:
    """Fold a worker's per-task delta into the coordinator's registry.

    Every numeric delta is folded: ints and non-time floats through the
    counter table, ``time.*`` floats through the phase table.  (Only
    ``time.``-prefixed floats used to survive the merge, so any float
    counter a task accumulated was silently dropped and coordinator
    ``PERF`` disagreed with a sequential run.)"""
    for key, val in counters.items():
        if isinstance(val, bool) or not isinstance(val, (int, float)):
            continue
        if key.startswith("time.") and isinstance(val, float):
            PERF.add_time(key[len("time."):], val)
        elif val:
            PERF.incr(key, val)


def _run_task_inline(
    fn: Callable, shared: Any, index: int, item: Any, capture_errors: bool
) -> TaskResult:
    """Run one point in-process under the same isolation a pool worker
    gets: the task starts from a clean registry (so a mid-task
    ``PERF.reset()`` behaves identically at any worker count), its
    snapshot is exactly its delta, and the coordinator's counters are
    restored and the delta folded back afterwards."""
    baseline = PERF.dump()
    PERF.reset()
    t0 = time.perf_counter()
    value = None
    error = None
    try:
        value = _call(fn, shared, item)
    except Exception as exc:
        if not capture_errors:
            task_counters = PERF.snapshot()
            PERF.restore(baseline)
            _merge_back(task_counters)
            raise
        error = _format_error(exc)
    seconds = time.perf_counter() - t0
    task_counters = PERF.snapshot()
    PERF.restore(baseline)
    _merge_back(task_counters)
    return TaskResult(index, value, seconds, task_counters, error)


def sweep(
    fn: Callable,
    items: Iterable[Any],
    workers: Optional[int] = None,
    shared: Any = _NO_SHARED,
    on_error: str = "raise",
) -> SweepReport:
    """Run ``fn`` over every item; return a :class:`SweepReport`.

    ``fn(item)`` — or ``fn(shared, item)`` when a ``shared`` context is
    given — is called once per point.  ``workers=None`` (or ``<= 1``)
    runs sequentially in-process; larger values fan out over a
    ``ProcessPoolExecutor`` with ``shared`` shipped once per worker via
    the pool initializer.  Results always come back in submission
    order, and each worker's perf-counter deltas are merged into the
    coordinating process's :data:`repro.perf.PERF`.

    ``on_error="raise"`` (the default) propagates the first task
    exception in submission order; ``on_error="capture"`` records it in
    the task's :attr:`TaskResult.error` slot instead and keeps the
    sweep — and the pool — alive for the remaining points.
    """
    if on_error not in ("raise", "capture"):
        raise ValueError("on_error must be 'raise' or 'capture', not {!r}"
                         .format(on_error))
    capture = on_error == "capture"
    points = list(items)
    has_shared = shared is not _NO_SHARED
    n_workers = 1 if workers is None else max(1, min(workers, len(points) or 1))
    t0 = time.perf_counter()
    results: List[TaskResult] = []
    if n_workers <= 1:
        for index, item in enumerate(points):
            results.append(_run_task_inline(fn, shared, index, item, capture))
    else:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(fn, shared if has_shared else None, has_shared),
        ) as pool:
            futures = [
                pool.submit(_run_task, index, item, capture)
                for index, item in enumerate(points)
            ]
            # collecting in submission order makes the report (and any
            # fold over it) independent of completion order
            results = [f.result() for f in futures]
        for r in results:
            _merge_back(r.counters)
    total = time.perf_counter() - t0
    PERF.incr("sweep.runs")
    PERF.incr("sweep.tasks", len(results))
    PERF.add_time("sweep.run", total)
    return SweepReport(tuple(results), total, n_workers)
