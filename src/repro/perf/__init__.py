"""Lightweight performance counters shared by the simulator, the model
checker and the BDD backend.

A single process-global registry (:data:`PERF`) accumulates named integer
counters and wall-time phases so benchmark deltas are attributable:

- ``sim.<kind>.reactions`` / ``sim.<kind>.sweeps`` /
  ``sim.<kind>.residual_passes`` — how many reactions the plan executor
  ran and how many fixpoint passes each one needed (first pass per
  propagation is a *sweep*, re-passes triggered by the residual worklist
  are ``residual_passes``); ``<kind>`` attributes the work to the
  closure plan (``plan``) or the specialized generated code
  (``plan.spec``);
- ``plan.cache_hits`` / ``plan.cache_misses`` — the process-wide
  compiled-plan cache (:func:`repro.sim.plan.shared_plan`);
- ``batch.<kind>.*`` — the same executor counters for reactions run
  through :func:`repro.sim.batch.simulate_batch` (including
  ``batch.plan.vector_instants``, instants the cross-lane numpy
  executor of :mod:`repro.sim.vector` solved for all lanes at once),
  plus ``batch.runs`` / ``batch.lanes`` / ``batch.instants`` (campaign
  volume), ``batch.memo_hits`` (reactions shared across lanes by the
  run-wide ``(state, inputs)`` memo) and ``batch.vector_runs``;
- ``mc.reactions`` / ``mc.memo_hits`` / ``mc.memo_misses`` — explicit
  model-checker work and reaction-memo effectiveness;
- ``bdd.apply_hits`` / ``bdd.apply_misses`` / ``bdd.cache_clears`` /
  ``bdd.gc_collections`` / ``bdd.gc_reclaimed`` / ``bdd.sift_passes`` /
  ``bdd.sift_swaps`` — cache, garbage-collection and dynamic-reordering
  behaviour of the symbolic backend (folded in by
  :meth:`repro.mc.bdd.BDD.cache_stats`);
- ``sweep.runs`` / ``sweep.tasks`` — work dispatched through the shared
  sweep executor (:mod:`repro.perf.sweep`);
- ``faults.injected`` / ``faults.drops`` / ``faults.duplicates`` /
  ``faults.reorders`` / ``faults.corrupts`` / ``faults.stalls`` /
  ``faults.soaks`` / ``faults.divergent_signals`` — fault-injection
  volume and divergence yield of the soak harness
  (:mod:`repro.faults.soak`);
- ``resilience.retransmits`` / ``resilience.abandoned`` /
  ``resilience.checkpoints`` / ``resilience.restarts`` /
  ``resilience.replayed`` — repair and supervision work of the
  recovery layer, merged per recovery soak
  (:func:`repro.faults.soak.recovery_soak`);
- ``time.<phase>`` — seconds spent in labeled phases.

Hot loops keep their own local integers and merge once per call
(:meth:`PerfCounters.merge`), so instrumentation stays off the per-node
fast paths.  Counters from worker processes spawned directly (e.g.
``compile_lts(workers=N)``) are *not* aggregated — only the
coordinating process records; sweeps routed through
:func:`repro.perf.sweep.sweep` *do* merge their workers' per-task
deltas back into the coordinator.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional, Tuple


class PerfCounters:
    """A named-counter registry with wall-time phases."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._times: Dict[str, float] = {}

    # -- counters -----------------------------------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + n

    def merge(self, counters: Mapping[str, int], prefix: str = "") -> None:
        """Fold a dict of locally-accumulated counters into the registry.

        A ``prefix`` names the subsystem; the joining dot is implied
        (``merge(c, "sim")`` yields ``sim.reactions`` etc.).
        """
        if prefix and not prefix.endswith("."):
            prefix += "."
        for name, n in counters.items():
            if n:
                self.incr(prefix + name, n)

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    # -- phases -------------------------------------------------------------

    def add_time(self, phase: str, seconds: float) -> None:
        key = "time." + phase
        self._times[key] = self._times.get(key, 0.0) + seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def get_time(self, phase: str) -> float:
        return self._times.get("time." + phase, 0.0)

    # -- inspection ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A copy of every counter and phase time (JSON-serializable)."""
        out: Dict[str, object] = dict(self._counts)
        out.update({k: round(v, 6) for k, v in self._times.items()})
        return out

    def dump(self) -> "Tuple[Dict[str, float], Dict[str, float]]":
        """Exact internal state, for :meth:`restore` — unlike
        :meth:`snapshot` nothing is rounded or flattened."""
        return (dict(self._counts), dict(self._times))

    def restore(self, state: "Tuple[Dict[str, float], Dict[str, float]]") -> None:
        """Reinstate a state captured by :meth:`dump` (the sweep executor
        uses the pair to isolate each sequential task's counters)."""
        counts, times = state
        self._counts = dict(counts)
        self._times = dict(times)

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero all counters, or only those under ``prefix``."""
        if prefix is None:
            self._counts.clear()
            self._times.clear()
            return
        for d in (self._counts, self._times):
            for key in [k for k in d if k.startswith(prefix)]:
                del d[key]

    def render(self) -> str:
        lines = []
        for key in sorted(self.snapshot()):
            lines.append("{} = {}".format(key, self.snapshot()[key]))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "PerfCounters({} counters, {} phases)".format(
            len(self._counts), len(self._times)
        )


#: The process-global registry.
PERF = PerfCounters()
