"""Exception hierarchy for the repro toolkit.

Every error raised by the library derives from :class:`ReproError`, so
client code can catch toolkit failures with a single ``except`` clause
while still being able to discriminate the phase that failed (parsing,
typing, clock analysis, simulation, transformation, verification).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro toolkit."""


class SignalSyntaxError(ReproError):
    """A textual Signal program could not be lexed or parsed.

    Carries the source position when available.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = "{}:{}: {}".format(line, column, message)
        super().__init__(message)


class SignalTypeError(ReproError):
    """A Signal program is ill-typed (value types, arities, redefinitions)."""


class ClockError(ReproError):
    """Clock calculus failure: contradictory or undecidable clock constraints."""


class CausalityError(ReproError):
    """Instantaneous dependency cycle that no schedule can order."""


class SimulationError(ReproError):
    """The operational simulator hit an inconsistent reaction."""


class NonDeterministicClockError(SimulationError):
    """A reaction left the presence of some signal undetermined.

    This is the operational symptom of a non-endochronous program being run
    without an oracle for its free clocks.
    """

    def __init__(self, message: str, undetermined=()):
        self.undetermined = tuple(undetermined)
        super().__init__(message)


class TransformError(ReproError):
    """Desynchronization transformation could not be applied."""


class VerificationError(ReproError):
    """Model-checking backend failure (not a property violation)."""


class EquivalenceError(ReproError):
    """Behavior/process equivalence checking was given incomparable operands."""
