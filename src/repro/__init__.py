"""repro — a polychronous (Signal) toolkit for GALS design.

Reproduction of *Modeling and Validating Globally Asynchronous Design in
Synchronous Frameworks* (Mousavi, Le Guernic, Talpin, Shukla, Basten —
DATE 2004).

The package provides, from the ground up:

- :mod:`repro.tags` — the tagged denotational model of polychrony
  (behaviors, stretching / relaxation / flow equivalence, asynchronous
  composition, FIFO channel semantics);
- :mod:`repro.lang` — a Signal language frontend (AST, parser, printer,
  types, analyses);
- :mod:`repro.clocks` — the clock calculus (synchrony classes, hierarchy,
  endochrony diagnostics);
- :mod:`repro.sim` — a constructive reaction simulator;
- :mod:`repro.desync` — the paper's contribution: FIFO-based
  desynchronization, instrumentation, buffer-size estimation;
- :mod:`repro.mc` — an explicit-state model checker ("no alarm is ever
  raised", with counterexample input sequences);
- :mod:`repro.gals` — asynchronous (GALS) deployment simulation;
- :mod:`repro.workloads` — environment scenarios;
- :mod:`repro.designs` — canonical multi-component designs.

Quickstart::

    from repro.designs import producer_consumer
    from repro.desync import desynchronize
    from repro.sim import simulate, stimuli

    res = desynchronize(producer_consumer(), capacities=2)
    stim = stimuli.merge(stimuli.periodic("p_act", 1),
                         stimuli.periodic("x_rreq", 1))
    trace = simulate(res.program, stim, n=20)
    print(trace.render(["x__w", "x__r", "y"]))
"""

__version__ = "1.0.0"

from repro import errors  # noqa: F401

__all__ = ["errors", "__version__"]
