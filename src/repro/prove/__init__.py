"""Static flow-equivalence proofs for desynchronized deployments.

The theorems of the paper say *when* a GALS deployment is flow-equivalent
to its synchronous source; :mod:`repro.desync.theorems` checks those
hypotheses on the stimuli we happened to run.  This package discharges
the property *statically*, for every input stream the environment can
offer:

- :func:`repro.prove.affine.affine_flow_analysis` — the inductive
  argument over :mod:`repro.clocks.calculus` constraints and affine
  clock words (endochronous designs under rate assumptions);
- :func:`repro.prove.observers.flow_observer` — per-signal
  flow-comparison observers composed with the desynchronized program,
  turning flow equivalence into ``never``-present obligations for the
  explicit/symbolic/compose model-checking backends;
- :func:`repro.prove.core.prove_flow_equivalence` — the prover proper,
  returning a :class:`~repro.prove.core.ProofCertificate` with verdict
  ``proven`` / ``refuted`` / ``unknown``; refutations carry a concrete
  witness stimulus;
- :func:`repro.prove.witness.replay_witness` — replays a refutation in
  :mod:`repro.sim` and checks the co-simulation diverges at exactly the
  reported signal and instant.
"""

from repro.prove.affine import (
    AffineAnalysis,
    EdgeWords,
    affine_flow_analysis,
    channel_edge_words,
    overflow_instant,
)
from repro.prove.core import (
    CERT_FORMAT,
    ProofCertificate,
    certificate_from_dict,
    prove_certificate_key,
    prove_flow_equivalence,
)
from repro.prove.observers import flow_observer
from repro.prove.witness import ReplayReport, replay_witness

__all__ = [
    "AffineAnalysis",
    "CERT_FORMAT",
    "EdgeWords",
    "ProofCertificate",
    "ReplayReport",
    "affine_flow_analysis",
    "certificate_from_dict",
    "channel_edge_words",
    "flow_observer",
    "overflow_instant",
    "prove_certificate_key",
    "prove_flow_equivalence",
    "replay_witness",
]
