"""The flow-equivalence prover and its certificates.

:func:`prove_flow_equivalence` discharges (or refutes) flow equivalence
of a synchronous program against its desynchronized deployment:

1. **affine path** — under rate assumptions that make the design
   endochronous, every channel's occupancy induction
   (:mod:`repro.prove.affine`) either bounds the peak within the declared
   capacity (edge discharged) or exhibits the exact first overflow
   instant (edge refuted, with a replayable periodic witness);
2. **model-checking path** — otherwise the product construction
   (:func:`repro.prove.observers.product`) turns the property into
   ``never``-present obligations checked on the explicit, symbolic (BDD)
   or assume-guarantee compose backend; a counterexample becomes a
   witness stimulus.

The outcome is a :class:`ProofCertificate` with verdict ``proven`` /
``refuted`` / ``unknown``.  ``unknown`` is always accompanied by a
machine-readable ``reason`` — the prover never silently degrades.

Certificates are deterministic functions of (design content, assumption
set): no wall-clock, no iteration order dependence — the service's
byte-identity gate compares their digests across worker counts.  When a
:class:`repro.mc.store.MCStore` is available they are cached under kind
``prove-certificate``, so warm re-proofs cost one hash and one JSON
read; the backends additionally thread the same store for their own
intermediates (compiled LTSs, symbolic fixpoints).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ReproError
from repro.lang.analysis import flatten_program, shared_signals
from repro.lang.ast import Program
from repro.lang.types import BOOL, EVENT
from repro.lint.bounds import PeriodicWord
from repro.perf import PERF
from repro.prove.affine import (
    UNBOUNDED,
    AffineAnalysis,
    affine_flow_analysis,
    overflow_instant,
)
from repro.prove.observers import FIFO_FAITHFUL, NO_OVERFLOW, product
from repro.prove.witness import affine_witness, counterexample_witness

#: on-disk certificate format stamp (see :meth:`ProofCertificate.to_dict`)
CERT_FORMAT = "prove-cert-v1"

#: store kind certificates are cached under
CERT_KIND = "prove-certificate"

PROVEN = "proven"
REFUTED = "refuted"
UNKNOWN = "unknown"


class ProofCertificate(NamedTuple):
    """The prover's verdict plus everything needed to audit or replay it."""

    program: str
    verdict: str                       # proven / refuted / unknown
    method: str                        # affine-inductive / mc-<backend> / trivial
    backend: str                       # what was requested
    obligations: Tuple[Dict[str, Any], ...]
    assumptions: Dict[str, Any]        # rates, capacities, pinned inputs...
    stats: Dict[str, Any]              # states explored, edges, constraints
    reason: Optional[str] = None       # mandatory when verdict is unknown
    witness: Optional[Dict[str, Any]] = None  # mandatory when refuted

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": CERT_FORMAT,
            "program": self.program,
            "verdict": self.verdict,
            "method": self.method,
            "backend": self.backend,
            "obligations": [dict(o) for o in self.obligations],
            "assumptions": dict(self.assumptions),
            "stats": dict(self.stats),
            "reason": self.reason,
            "witness": None if self.witness is None else dict(self.witness),
        }


def certificate_from_dict(payload: Mapping[str, Any]) -> ProofCertificate:
    """Rehydrate a cached certificate; raises on a foreign format."""
    if payload.get("format") != CERT_FORMAT:
        raise ValueError(
            "not a {} payload: {!r}".format(CERT_FORMAT, payload.get("format"))
        )
    return ProofCertificate(
        program=payload["program"],
        verdict=payload["verdict"],
        method=payload["method"],
        backend=payload["backend"],
        obligations=tuple(dict(o) for o in payload.get("obligations", [])),
        assumptions=dict(payload.get("assumptions", {})),
        stats=dict(payload.get("stats", {})),
        reason=payload.get("reason"),
        witness=payload.get("witness"),
    )


# -- assumption normalization -------------------------------------------------

def word_spec(word: PeriodicWord) -> str:
    """Canonical ``prefix|cycle`` 0/1 text of a word (normalized first)."""
    n = word.normalized()
    return "{}|{}".format(
        "".join("1" if b else "0" for b in n.prefix),
        "".join("1" if b else "0" for b in n.cycle),
    )


def word_from_spec(spec: str) -> PeriodicWord:
    """Inverse of :func:`word_spec`."""
    prefix, _, cycle = spec.partition("|")
    return PeriodicWord(
        tuple(c == "1" for c in prefix), tuple(c == "1" for c in cycle)
    )


def normalize_assumptions(
    rates: Optional[Mapping[str, PeriodicWord]] = None,
    capacities: Union[int, Mapping[str, int]] = 1,
    backend: str = "auto",
    int_values: Sequence[int] = (0, 1),
    always: Sequence[str] = (),
    never_input: Sequence[str] = (),
    max_states: int = 20000,
    read_requests: Optional[Mapping[str, str]] = None,
    fifo: str = "direct",
    backpressure: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """The canonical, JSON-stable assumption set — the certificate's cache
    identity (beyond design content) and its audit record."""
    return {
        "backend": backend,
        "fifo": fifo,
        "rates": {k: word_spec(v) for k, v in sorted((rates or {}).items())},
        "capacities": (
            int(capacities)
            if isinstance(capacities, int)
            else {k: int(v) for k, v in sorted(capacities.items())}
        ),
        "int_values": [int(v) for v in int_values],
        "always": sorted(always),
        "never_input": sorted(never_input),
        "max_states": int(max_states),
        "read_requests": dict(sorted((read_requests or {}).items())),
        "backpressure": dict(sorted((backpressure or {}).items())),
    }


def _capacity_map(program: Program, capacities) -> Dict[str, int]:
    caps: Dict[str, int] = {}
    for s in shared_signals(program):
        if not s.producer or not s.consumers:
            continue
        if isinstance(capacities, int):
            caps[s.name] = capacities
        else:
            caps[s.name] = int(capacities.get(s.name, 1))
    return caps


def prove_certificate_key(program: Program, assumptions: Mapping[str, Any]) -> str:
    """The :mod:`repro.mc.store` address of this (design, assumptions)
    certificate — exported so benches can probe warm rates."""
    from repro.mc.store import design_content_key, store_key

    flat = flatten_program(program)
    return store_key(CERT_KIND, design_content_key(flat), dict(assumptions))


# -- the prover ---------------------------------------------------------------

def prove_flow_equivalence(
    program: Program,
    rates: Optional[Mapping[str, PeriodicWord]] = None,
    capacities: Union[int, Mapping[str, int]] = 1,
    backend: str = "auto",
    int_values: Sequence[int] = (0, 1),
    always: Sequence[str] = (),
    never_input: Sequence[str] = (),
    max_states: int = 20000,
    read_requests: Optional[Mapping[str, str]] = None,
    fifo: str = "direct",
    backpressure: Optional[Mapping[str, str]] = None,
    store=None,
) -> ProofCertificate:
    """Statically prove (or refute) flow equivalence of ``program``'s
    desynchronized deployment against the program itself.

    ``backend``: ``auto`` (affine first, then model checking),
    ``affine`` (inductive path only; unknown when inapplicable),
    ``explicit`` / ``symbolic`` / ``compose`` (force that MC backend).
    ``store`` is an :class:`repro.mc.store.MCStore` (or ``None``); pass
    :func:`repro.mc.store.default_store` to honor ``REPRO_MC_STORE``.
    """
    rates = dict(rates or {})
    assumptions = normalize_assumptions(
        rates, capacities, backend, int_values, always, never_input,
        max_states, read_requests, fifo, backpressure,
    )
    key = None
    if store is not None:
        key = prove_certificate_key(program, assumptions)
        cached = store.get(key, kind=CERT_KIND)
        if cached is not None:
            PERF.incr("prove.cert.hits")
            return certificate_from_dict(cached)
        PERF.incr("prove.cert.misses")
    cert = _prove(
        program, rates, capacities, backend, int_values, always,
        never_input, max_states, read_requests, fifo, backpressure,
        assumptions, store,
    )
    if key is not None:
        store.put(key, CERT_KIND, cert.to_dict())
    return cert


def _prove(
    program, rates, capacities, backend, int_values, always, never_input,
    max_states, read_requests, fifo, backpressure, assumptions, store,
) -> ProofCertificate:
    caps = _capacity_map(program, capacities)
    if not caps:
        return ProofCertificate(
            program=program.name,
            verdict=PROVEN,
            method="trivial",
            backend=backend,
            obligations=(),
            assumptions=assumptions,
            stats={"channels": 0},
            reason="no inter-component channels: the program is its own "
                   "deployment",
        )

    # the occupancy induction models n_fifo_direct's accept rule; other
    # deployments (paper 1-place, chained) go through the product
    if (backend in ("auto", "affine") and rates and fifo == "direct"
            and not backpressure):
        analysis = affine_flow_analysis(program, rates)
        if analysis.endochronous and analysis.complete and analysis.edges:
            return _affine_certificate(
                program, analysis, caps, rates, backend, assumptions,
                read_requests,
            )
        if backend == "affine":
            return ProofCertificate(
                program=program.name,
                verdict=UNKNOWN,
                method="affine-inductive",
                backend=backend,
                obligations=(),
                assumptions=assumptions,
                stats=_affine_stats(analysis),
                reason=_affine_gap(analysis),
            )
    elif backend == "affine":
        return ProofCertificate(
            program=program.name,
            verdict=UNKNOWN,
            method="affine-inductive",
            backend=backend,
            obligations=(),
            assumptions=assumptions,
            stats={"channels": len(caps)},
            reason=(
                "the affine path needs rate assumptions (none given)"
                if fifo == "direct"
                else "the affine occupancy induction models the direct "
                     "n-FIFO deployment, not fifo={!r}".format(fifo)
            ),
        )

    return _mc_certificate(
        program, caps, backend, int_values, always, never_input,
        max_states, read_requests, fifo, backpressure, assumptions, store,
    )


# -- affine path --------------------------------------------------------------

def _affine_stats(analysis: AffineAnalysis) -> Dict[str, Any]:
    return {
        "channels": len(analysis.edges),
        "constraints": analysis.constraints,
        "endochronous": analysis.endochronous,
    }


def _affine_gap(analysis: AffineAnalysis) -> str:
    if not analysis.endochronous:
        return ("not endochronous under the given rates: some clocks stay "
                "free of both inputs and rate assumptions")
    unknown = [e for e in analysis.edges if e.write is None]
    if unknown:
        return "clock words underivable for edges: {}".format(
            ", ".join(sorted("{}->{}".format(e.signal, e.consumer)
                             for e in unknown))
        )
    return "no channel edges derived"


def _edge_obligation(edge, cap: int, status: str) -> Dict[str, Any]:
    ob: Dict[str, Any] = {
        "channel": "{} -> {} : {}".format(edge.producer, edge.consumer,
                                          edge.signal),
        "signal": edge.signal,
        "kind": "occupancy-induction",
        "capacity": cap,
        "status": status,
    }
    if edge.write is not None:
        ob["write"] = word_spec(edge.write)
        ob["read"] = word_spec(edge.read)
    if edge.bound is not None:
        ob["bound"] = edge.bound
    return ob


def _affine_certificate(
    program, analysis: AffineAnalysis, caps, rates, backend, assumptions,
    read_requests=None,
) -> ProofCertificate:
    refuted = analysis.refuted_edges(caps)
    refuted_keys = {(e.signal, e.consumer) for e in refuted}
    obligations = []
    for edge in analysis.edges:
        cap = caps.get(edge.signal, 1)
        status = (
            "violated" if (edge.signal, edge.consumer) in refuted_keys
            else "discharged"
        )
        obligations.append(_edge_obligation(edge, cap, status))
    obligations.sort(key=lambda o: (o["channel"], o["kind"]))
    stats = _affine_stats(analysis)
    if not refuted:
        return ProofCertificate(
            program=program.name,
            verdict=PROVEN,
            method="affine-inductive",
            backend=backend,
            obligations=tuple(obligations),
            assumptions=assumptions,
            stats=stats,
        )
    edge = refuted[0]
    cap = caps.get(edge.signal, 1)
    instant = (
        None if edge.write is None
        else overflow_instant(edge.write, edge.read, cap)
    )
    witness = affine_witness(program, edge, caps, instant, rates, read_requests)
    return ProofCertificate(
        program=program.name,
        verdict=REFUTED,
        method="affine-inductive",
        backend=backend,
        obligations=tuple(obligations),
        assumptions=assumptions,
        stats=stats,
        reason=(
            "channel {} -> {} : {} is unbounded under the assumed rates"
            .format(edge.producer, edge.consumer, edge.signal)
            if edge.status == UNBOUNDED
            else "channel {} -> {} : {} needs capacity {} but {} is deployed"
            .format(edge.producer, edge.consumer, edge.signal, edge.bound, cap)
        ),
        witness=witness,
    )


# -- model-checking path ------------------------------------------------------

def _mc_certificate(
    program, caps, backend, int_values, always, never_input,
    max_states, read_requests, fifo, backpressure, assumptions, store,
) -> ProofCertificate:
    from repro.mc import compile_lts, check_never_present, input_alphabet

    def unknown(method: str, reason: str, stats=None) -> ProofCertificate:
        return ProofCertificate(
            program=program.name,
            verdict=UNKNOWN,
            method=method,
            backend=backend,
            obligations=(),
            assumptions=assumptions,
            stats=stats or {"channels": len(caps)},
            reason=reason,
        )

    try:
        info = product(
            program, capacities=caps,
            read_requests=dict(read_requests or {}), kind=fifo,
            backpressure=dict(backpressure or {}),
        )
        flat = flatten_program(info.program)
    except ReproError as err:
        return unknown("mc-product", "product construction failed: {}".format(err))

    all_bool = all(ty in (BOOL, EVENT) for ty in flat.signals().values())
    chosen = backend
    if backend == "auto":
        chosen = "symbolic" if all_bool else "explicit"
    method = "mc-" + chosen

    alphabet = input_alphabet(
        flat,
        int_values=tuple(int_values),
        always_present=tuple(always),
        never_present=tuple(never_input),
    )
    ordered = sorted(info.obligations, key=lambda o: (o.label, o.kind))
    obligations = []
    stats: Dict[str, Any] = {"channels": len(info.deployment.channels)}
    witness = None
    reason = None
    verdict = PROVEN

    try:
        if chosen == "explicit":
            lts = compile_lts(
                flat, alphabet=alphabet, max_states=max_states, store=store
            )
            stats["states"] = lts.num_states()
            stats["transitions"] = lts.num_transitions()
            check = lambda event: check_never_present(lts, event)
        elif chosen == "symbolic":
            from repro.mc.symbolic import SymbolicChecker

            chk = SymbolicChecker(flat, alphabet=alphabet, store=store)
            stats["states"] = chk.state_count()
            stats["iterations"] = chk.iterations
            check = chk.check_never_present
        elif chosen == "compose":
            def check(event):
                from repro.mc.compose import verify_composed

                cert = verify_composed(
                    info.program,
                    event,
                    int_values=tuple(int_values),
                    always_present=tuple(always),
                    never_present=tuple(never_input),
                    max_states=max_states,
                    store=store,
                )
                stats["largest_check_states"] = max(
                    stats.get("largest_check_states", 0),
                    cert.largest_check_states,
                )
                if cert.verdict == "refuted":
                    return cert.counterexample
                if cert.verdict != "proven":
                    raise ReproError(
                        "compose backend returned {!r} for {}".format(
                            cert.verdict, event
                        )
                    )
                return None
        else:
            raise ValueError("unknown prove backend {!r}".format(backend))

        for ob in ordered:
            ce = check(ob.event)
            record = {
                "channel": ob.channel,
                "signal": ob.signal,
                "kind": ob.kind,
                "event": ob.event,
                "capacity": ob.capacity,
                "status": "discharged" if ce is None else "violated",
            }
            obligations.append(record)
            if ce is not None:
                verdict = REFUTED
                witness = counterexample_witness(ob, ce)
                reason = "obligation {} on channel {} is violated".format(
                    ob.kind, ob.channel
                )
                for rest in ordered[len(obligations):]:
                    obligations.append({
                        "channel": rest.channel,
                        "signal": rest.signal,
                        "kind": rest.kind,
                        "event": rest.event,
                        "capacity": rest.capacity,
                        "status": "not-checked",
                    })
                break
    except ReproError as err:
        return unknown(
            method,
            "{} backend could not discharge the product: {}".format(
                chosen, err
            ),
            stats,
        )

    obligations.sort(key=lambda o: (o["channel"], o["kind"]))
    return ProofCertificate(
        program=program.name,
        verdict=verdict,
        method=method,
        backend=backend,
        obligations=tuple(obligations),
        assumptions=assumptions,
        stats=stats,
        reason=reason,
        witness=witness,
    )
