"""Refutation witnesses and their simulator replay.

A refuted certificate carries a *witness*: a finite input stimulus (one
``{signal: value}`` row per instant) for the desynchronized deployment,
plus the divergence event and the exact instant it first fires.  The
witness is data, not prose — :func:`replay_witness` re-desynchronizes
the design under the certificate's own assumptions, runs the stimulus in
:mod:`repro.sim`, and checks that

1. the named divergence event (the channel's alarm, or the flow
   observer's ``__flowdiv``) first occurs at exactly the reported
   instant, and
2. for overflow witnesses, the co-simulated *source* program and the
   deployment first disagree on the signal's flow at that same instant:
   the source emits its next token while the deployment's channel
   rejects the write.

So the prover's static claim and the operational semantics meet on one
concrete run — the same closure A2/A7 give dynamically, now anchored to
the instant the proof names.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, NamedTuple, Optional

from repro.lang.analysis import flatten_program
from repro.lang.ast import Program
from repro.lang.types import BOOL, EVENT, INT
from repro.lint.bounds import PeriodicWord
from repro.sim import simulate, stimuli

#: witness kinds
OVERFLOW = "overflow"            # a write was rejected (token lost)
FLOW_DIVERGENCE = "flow-divergence"  # reads stop replaying accepted writes


def _value_for(ty) -> object:
    if ty is EVENT or ty is BOOL:
        return True
    return 1


def affine_witness(
    program: Program,
    edge,
    caps: Mapping[str, int],
    instant: Optional[int],
    rates: Mapping[str, PeriodicWord],
    read_requests: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Witness for an affine refutation: the assumed rates, unrolled to
    the overflow instant, as a concrete deployment stimulus."""
    from repro.desync.transform import desynchronize

    des = desynchronize(
        program, capacities=dict(caps), read_requests=dict(read_requests or {})
    )
    ch = des.channel_for(edge.signal, edge.consumer)
    flat = flatten_program(des.program)
    rows: List[Dict[str, Any]] = []
    if instant is not None:
        for t in range(instant + 1):
            row: Dict[str, Any] = {}
            for name, ty in flat.inputs.items():
                word = rates.get(name)
                if word is not None and word.at(t):
                    row[name] = _value_for(ty)
            rows.append(row)
    return {
        "kind": OVERFLOW,
        "signal": edge.signal,
        "producer": edge.producer,
        "consumer": edge.consumer,
        "channel": "{} -> {} : {}".format(
            edge.producer, edge.consumer, edge.signal
        ),
        "event": ch.alarm,
        "capacity": caps.get(edge.signal, 1),
        "instant": instant,
        "inputs": rows,
    }


def counterexample_witness(obligation, ce) -> Dict[str, Any]:
    """Witness from a model-checking counterexample on the product."""
    from repro.prove.observers import NO_OVERFLOW

    rows = [dict(row) for row in ce.inputs]
    return {
        "kind": OVERFLOW if obligation.kind == NO_OVERFLOW else FLOW_DIVERGENCE,
        "signal": obligation.signal,
        "producer": obligation.producer,
        "consumer": obligation.consumer,
        "channel": obligation.channel,
        "event": obligation.event,
        "capacity": obligation.capacity,
        "instant": len(rows) - 1,
        "inputs": rows,
        "violation": ce.violation,
    }


class ReplayReport(NamedTuple):
    """Outcome of replaying a witness in the simulator."""

    ok: bool
    signal: str
    event: str
    expected_instant: Optional[int]
    observed_instant: Optional[int]      # first firing of the event
    divergence_instant: Optional[int]    # first source/deployment flow gap
    details: str

    def render(self) -> str:
        return (
            "witness replay {}: event {} expected at t={}, observed at "
            "t={}, source/deployment flows diverge at t={}\n{}".format(
                "confirmed" if self.ok else "FAILED",
                self.event,
                self.expected_instant,
                self.observed_instant,
                self.divergence_instant,
                self.details,
            )
        )


def replay_witness(program: Program, certificate) -> ReplayReport:
    """Replay ``certificate.witness`` against ``program``'s deployment.

    ``certificate`` is a :class:`~repro.prove.core.ProofCertificate` (or
    anything with ``witness`` and ``assumptions`` attributes shaped the
    same way).  Raises ``ValueError`` when there is no witness.
    """
    from repro.prove.observers import product

    witness = certificate.witness
    if not witness:
        raise ValueError("certificate carries no witness to replay")
    assumptions = certificate.assumptions
    caps = assumptions.get("capacities", 1)
    if isinstance(caps, dict):
        caps = {k: int(v) for k, v in caps.items()}
    read_requests = dict(assumptions.get("read_requests") or {})

    info = product(
        program,
        capacities=caps,
        read_requests=read_requests,
        kind=assumptions.get("fifo", "direct"),
        backpressure=dict(assumptions.get("backpressure") or {}),
    )
    rows = [dict(row) for row in witness.get("inputs", [])]
    expected = witness.get("instant")
    event = witness["event"]
    signal = witness["signal"]
    if not rows or expected is None:
        return ReplayReport(
            False, signal, event, expected, None, None,
            "witness has no stimulus rows to replay",
        )

    trace = simulate(info.program, stimuli.rows(rows), n=len(rows))
    fired = [t for t, row in enumerate(trace.instants) if event in row]
    observed = fired[0] if fired else None

    divergence = None
    if witness.get("kind") == OVERFLOW:
        ch = info.deployment.channel_for(signal, witness.get("consumer"))
        src_flat = flatten_program(program)
        src_rows = [
            {k: v for k, v in row.items() if k in src_flat.inputs}
            for row in rows
        ]
        src_trace = simulate(program, stimuli.rows(src_rows), n=len(src_rows))
        emitted = accepted = 0
        for t in range(len(rows)):
            if signal in src_trace.instants[t]:
                emitted += 1
            if ch.ok in trace.instants[t]:
                accepted += 1
            if emitted != accepted:
                divergence = t
                break
        ok = observed == expected and divergence == expected
    else:
        ok = observed == expected

    details = "event fired at instants {} over {} replayed instants".format(
        fired, len(rows)
    )
    return ReplayReport(
        ok, signal, event, expected, observed, divergence, details
    )
