"""The inductive flow-equivalence argument over affine clock words.

When every channel clock of a deployment is derivable from the assumed
input rates (the affine/endochronous case), flow equivalence reduces to
an occupancy induction per channel edge:

1. the clock calculus (:func:`repro.clocks.calculus.extract_constraints`)
   pins each signal's clock to a word of the rate assumptions
   (:func:`repro.lint.bounds.infer_clock_words`);
2. the channel's occupancy automaton — writes at the producer's word,
   reads at the request word, a read succeeding iff the count at the
   instant start is positive — is ultimately periodic, so iterating it
   until a hyperperiod boundary state repeats *is* the induction: the
   peak occupancy over base prefix plus one cycle bounds every instant
   (:func:`repro.lint.bounds.channel_bound`);
3. peak <= capacity implies the deployed FIFO
   (:func:`repro.desync.fifo.n_fifo_direct`) never rejects a write: its
   accept rule is ``count < n or read-this-instant``, so the first
   rejection would need the unrejecting occupancy to exceed ``n`` —
   impossible when the peak is within the capacity.  No rejected write
   plus FIFO order preservation gives per-signal flow equality.

Conversely, if the peak exceeds the capacity (or the writer's long-run
rate exceeds the reader's, so no finite capacity suffices), the *first*
instant the unrejecting occupancy would exceed the capacity is exactly
the first alarm of the deployment — :func:`overflow_instant` computes
it, and the prover turns it into a replayable witness stimulus.

:func:`channel_edge_words` also hosts the producer-to-consumer delivered
sweep shared with ``repro.lint``'s GALS003/004/005 rules: a node fed by
exactly one channel fires at that channel's *delivered* word, so
multi-hop pipelines propagate rates hop by hop.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import ReproError
from repro.clocks.calculus import extract_constraints
from repro.clocks.hierarchy import analyze_clocks
from repro.lang.analysis import flatten_program, shared_signals
from repro.lang.ast import Program
from repro.lint.bounds import (
    PeriodicWord,
    channel_bound,
    delivered_reads,
    infer_clock_words,
)

#: per-edge status values
BOUNDED = "bounded"
UNBOUNDED = "unbounded"
UNKNOWN = "unknown"


class EdgeWords(NamedTuple):
    """Clock words and occupancy bound of one channel edge."""

    signal: str
    producer: str
    consumer: str
    write: Optional[PeriodicWord]   # None when underivable
    read: Optional[PeriodicWord]
    bound: Optional[int]            # peak occupancy; None unless bounded
    status: str                     # BOUNDED / UNBOUNDED / UNKNOWN


def _read_word(
    rates: Mapping[str, PeriodicWord], signal: str, consumer: str
) -> PeriodicWord:
    read = rates.get("{}_rreq".format(signal))
    if read is None:
        read = rates.get("{}_{}_rreq".format(signal, consumer))
    if read is None:
        # data-driven consumer: reads whenever data can arrive
        read = PeriodicWord.always()
    return read


def channel_edge_words(
    program: Program, rates: Mapping[str, PeriodicWord]
) -> List[EdgeWords]:
    """Write/read words and occupancy bound for every channel edge.

    Performs the producer-to-consumer delivered sweep: a consumer fed by
    exactly one channel fires at that channel's delivered word; edges on
    consumption cycles (request/response) fall back to the synchronous
    clock word once the fixpoint stalls.
    """
    try:
        flat = flatten_program(program, namespace_locals=True)
    except ReproError:
        return []
    words = infer_clock_words(flat, rates)
    shared = [s for s in shared_signals(program) if s.producers]
    edges = [(s, c) for s in shared for c in s.consumers]
    keys = {(s.name, c) for s, c in edges}
    consumed_by: Dict[str, List[Tuple[str, str]]] = {}
    for s, c in edges:
        consumed_by.setdefault(c, []).append((s.name, c))
    delivered: Dict[Tuple[str, str], PeriodicWord] = {}
    failed: set = set()
    results: Dict[Tuple[str, str], EdgeWords] = {}

    pending = list(edges)
    settled = False
    while pending:
        progress = False
        deferred = []
        for s, consumer in pending:
            producer = s.producers[0]
            upstream = [k for k in consumed_by.get(producer, ()) if k in keys]
            write = None
            if len(upstream) == 1 and not settled:
                (up,) = upstream
                if up in delivered:
                    write = delivered[up]
                elif up not in failed:
                    deferred.append((s, consumer))
                    continue
            if write is None:
                write = words.get(s.name)
            progress = True
            key = (s.name, consumer)
            if write is None:
                failed.add(key)
                results[key] = EdgeWords(
                    s.name, producer, consumer, None, None, None, UNKNOWN
                )
                continue
            read = _read_word(rates, s.name, consumer)
            bound = channel_bound(write, read)
            if bound is None:
                results[key] = EdgeWords(
                    s.name, producer, consumer, write, read, None, UNBOUNDED
                )
            else:
                delivered[key] = delivered_reads(write, read)
                results[key] = EdgeWords(
                    s.name, producer, consumer, write, read, bound, BOUNDED
                )
        pending = deferred
        if not progress:
            settled = True  # break consumption cycles: synchronous words
    return [results[(s.name, c)] for s, c in edges if (s.name, c) in results]


def overflow_instant(
    write: PeriodicWord, read: PeriodicWord, capacity: int, horizon: int = 4096
) -> Optional[int]:
    """First instant the deployed FIFO of ``capacity`` raises its alarm.

    Steps the exact accept rule of :func:`repro.desync.fifo.n_fifo_direct`
    (a write is accepted iff ``count < capacity`` at the instant start or
    a read succeeds this very instant); up to the first rejection the
    FIFO's occupancy equals the unrejecting automaton's, so the instant
    returned is exact.  ``None`` when no overflow occurs within
    ``horizon`` instants (which, past the hyperperiod induction of
    :func:`~repro.lint.bounds.channel_bound`, means never).
    """
    count = 0
    for t in range(horizon):
        rd = read.at(t) and count > 0
        wr = write.at(t)
        if wr and count >= capacity and not rd:
            return t
        count += int(wr) - int(rd)
        if count > capacity:  # accepted same-instant write into freed slot
            count = capacity
    return None


class AffineAnalysis(NamedTuple):
    """Outcome of the inductive path over one program."""

    edges: Tuple[EdgeWords, ...]
    constraints: int          # size of the clock-constraint base
    endochronous: bool        # clocks determined by inputs alone
    rated_inputs: Tuple[str, ...]

    @property
    def complete(self) -> bool:
        """Every edge's words were derivable (no UNKNOWN edges)."""
        return all(e.status != UNKNOWN for e in self.edges)

    def refuted_edges(self, capacities: Mapping[str, int]) -> List[EdgeWords]:
        """Edges whose occupancy provably exceeds the deployed capacity."""
        out = []
        for e in self.edges:
            if e.status == UNBOUNDED:
                out.append(e)
            elif e.status == BOUNDED:
                cap = capacities.get(e.signal)
                if cap is not None and e.bound > cap:
                    out.append(e)
        return out


def affine_flow_analysis(
    program: Program, rates: Mapping[str, PeriodicWord]
) -> AffineAnalysis:
    """Run the inductive path: constraints, endochrony, per-edge bounds."""
    try:
        flat = flatten_program(program, namespace_locals=True)
        constraints = len(extract_constraints(flat))
        analysis = analyze_clocks(flat)
        free = set(analysis.free)
    except ReproError:
        constraints = 0
        free = None
    edges = tuple(channel_edge_words(program, rates))
    rated = tuple(sorted(rates))
    # endochronous *under the rate assumptions*: every clock the inputs
    # leave free is pinned by an assumed word
    endo = free is not None and all(name in rates for name in free)
    return AffineAnalysis(edges, constraints, endo, rated)
