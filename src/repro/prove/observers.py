"""Per-signal flow-comparison observers for the product construction.

A flow observer is a Signal component composed *next to* a channel of the
desynchronized deployment.  It maintains the reference FIFO denotation
(Definition 9) of the channel — a queue of the values the channel
*accepted* (its ``ok`` event), popped by the channel's successful reads —
and raises a ``<signal>__flowdiv`` event at the first instant the
implementation diverges from the reference:

- a read offered while the reference queue is empty (phantom item);
- a read whose value differs from the reference head (order or value
  corruption);
- an accepted write while the reference queue is already full and no
  same-instant read frees a slot (occupancy violation).

``never <signal>__flowdiv`` on the composed (product) system is then the
static analogue of Theorem 2's per-channel FIFO-faithfulness check: it
quantifies over *every* input stream of the alphabet instead of one
observed trace.  Together with ``never <signal>_alarm`` (no rejected
write, i.e. no lost item) the two obligations discharge flow equivalence
of the deployment against its synchronous source.

Keying the reference queue on ``ok`` rather than on the raw write port
makes the observer independent of the FIFO's accept rule — it compares
flows, not occupancy policies — so the same observer is sound for the
direct, chained and simultaneous FIFO constructions.

For capacity 1 the observer is a single slot plus one occupancy boolean;
with a boolean payload the whole product stays in the fragment the
symbolic (BDD) backend accepts.  Larger capacities use a shift-register
queue with a clamped integer occupancy counter (explicit backend).
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple, Union

from repro.desync.transform import Channel, DesyncResult, desynchronize
from repro.lang.ast import Component, Const, Program, pre
from repro.lang.builder import ComponentBuilder
from repro.lang.types import BOOL, EVENT, INT, Type


def _init_for(dtype: Type):
    return False if dtype is BOOL else 0


def flowdiv_signal(signal: str) -> str:
    """Name of the divergence event the observer of ``signal`` raises."""
    return "{}__flowdiv".format(signal)


def flow_observer(
    signal: str,
    write_port: str,
    read_port: str,
    ok: str,
    capacity: int,
    dtype: Type = INT,
) -> Component:
    """Build the flow-comparison observer for one channel.

    Inputs: the channel's ``write_port`` (payload of write attempts),
    ``read_port`` (payload of successful reads) and ``ok`` (accepted
    writes).  Output: the ``<signal>__flowdiv`` divergence event.
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if capacity == 1:
        return _observer_cap1(signal, write_port, read_port, ok, dtype)
    return _observer_capn(signal, write_port, read_port, ok, capacity, dtype)


def _observer_cap1(
    signal: str, write_port: str, read_port: str, ok: str, dtype: Type
) -> Component:
    p = "obs_{}_".format(signal)
    init = _init_for(dtype)
    b = ComponentBuilder("Obs_{}".format(signal))
    xw = b.input(write_port, dtype)
    xr = b.input(read_port, dtype)
    okv = b.input(ok, EVENT)
    div = b.output(flowdiv_signal(signal), EVENT)

    base = b.let(p + "base", EVENT, xw.clock().default(xr.clock()))
    okb = b.let(
        p + "okb", BOOL,
        Const(True).when(okv).default(Const(False).when(base)),
    )
    rdb = b.let(
        p + "rdb", BOOL,
        Const(True).when(xr.clock()).default(Const(False).when(base)),
    )
    occ = b.local(p + "occ", BOOL)
    occp = b.let(p + "occp", BOOL, pre(False, occ))
    # reference queue: pop first (a read returns the pre-state head),
    # then push the accepted value into the freed slot
    b.define(occ, okb | (occp & ~rdb))
    b.sync(occ, base)
    slot = b.local(p + "slot", dtype)
    b.define(slot, xw.when(okb).default(pre(init, slot).when(base)))
    b.sync(slot, base)

    underflow = b.let(p + "underflow", BOOL, rdb & ~occp)
    overflow = b.let(p + "overflow", BOOL, okb & occp & ~rdb)
    # value comparison at the read clock: sample the held head there
    head = b.let(p + "head", dtype, pre(init, slot).when(xr.clock()))
    bad = b.let(p + "bad", BOOL, xr.ne(head))
    b.define(
        div,
        Const(True).when(underflow | overflow).default(Const(True).when(bad)),
    )
    return b.build()


def _observer_capn(
    signal: str,
    write_port: str,
    read_port: str,
    ok: str,
    capacity: int,
    dtype: Type,
) -> Component:
    p = "obs_{}_".format(signal)
    init = _init_for(dtype)
    b = ComponentBuilder("Obs_{}".format(signal))
    xw = b.input(write_port, dtype)
    xr = b.input(read_port, dtype)
    okv = b.input(ok, EVENT)
    div = b.output(flowdiv_signal(signal), EVENT)

    base = b.let(p + "base", EVENT, xw.clock().default(xr.clock()))
    okb = b.let(
        p + "okb", BOOL,
        Const(True).when(okv).default(Const(False).when(base)),
    )
    rdb = b.let(
        p + "rdb", BOOL,
        Const(True).when(xr.clock()).default(Const(False).when(base)),
    )
    occ = b.local(p + "occ", INT)
    occp = b.let(p + "occp", INT, pre(0, occ))
    wi = b.let(
        p + "wi", INT, Const(1).when(okb).default(Const(0).when(base))
    )
    ri = b.let(
        p + "ri", INT, Const(1).when(rdb).default(Const(0).when(base))
    )
    occn = b.let(p + "occn", INT, occp + wi - ri)
    # clamp so the observer stays finite-state even past a divergence
    b.define(
        occ,
        Const(0).when(occn < 0)
        .default(Const(capacity).when(occn > capacity))
        .default(occn),
    )
    b.sync(occ, base)

    underflow = b.let(p + "underflow", BOOL, rdb & occp.eq(0))
    overflow = b.let(
        p + "overflow", BOOL, okb & occp.eq(capacity) & ~rdb
    )

    # shift-register queue: a read pops slot 0 (everything shifts down),
    # an accepted write lands at the post-read occupancy index
    idx = b.let(p + "idx", INT, occp - ri)
    slots = [b.local("{}s{}".format(p, i), dtype) for i in range(capacity)]
    prevs = [
        b.let("{}s{}p".format(p, i), dtype, pre(init, slots[i]))
        for i in range(capacity)
    ]
    for i in range(capacity):
        wcond = b.let("{}w{}".format(p, i), BOOL, okb & idx.eq(i))
        shifted = (
            prevs[i + 1].when(rdb) if i + 1 < capacity
            else prevs[i].when(rdb)
        )
        b.define(
            slots[i],
            xw.when(wcond).default(shifted).default(prevs[i].when(base)),
        )
        b.sync(slots[i], base)

    head = b.let(p + "head", dtype, prevs[0].when(xr.clock()))
    bad = b.let(p + "bad", BOOL, xr.ne(head))
    b.define(
        div,
        Const(True).when(underflow | overflow).default(Const(True).when(bad)),
    )
    return b.build()


# -- the product construction -------------------------------------------------

#: obligation kinds
NO_OVERFLOW = "no-overflow"      # never <channel>_alarm: no write is lost
FIFO_FAITHFUL = "fifo-faithful"  # never <signal>__flowdiv: reads replay writes


class Obligation(NamedTuple):
    """One ``never``-present check of the product construction."""

    label: str      # unique channel label (signal, plus consumer when forked)
    signal: str     # the original shared signal
    producer: str
    consumer: str
    event: str      # the signal that must never be present
    kind: str       # NO_OVERFLOW or FIFO_FAITHFUL
    capacity: int

    @property
    def channel(self) -> str:
        return "{} -> {} : {}".format(self.producer, self.consumer, self.signal)


class ProductInfo(NamedTuple):
    """Desynchronized deployment composed with its flow observers."""

    program: Program                  # deployment + observers
    deployment: DesyncResult          # the bare desynchronized program
    obligations: Tuple[Obligation, ...]


def product(
    program: Program,
    capacities: Union[int, Dict[str, int]] = 1,
    read_requests: Optional[Dict[str, str]] = None,
    kind: str = "direct",
    backpressure: Optional[Dict[str, str]] = None,
) -> ProductInfo:
    """Desynchronize ``program`` and compose a flow observer per channel.

    Returns the product program plus the obligation list whose joint
    discharge (every event never present) establishes flow equivalence:
    per channel, :data:`NO_OVERFLOW` on the FIFO's alarm and
    :data:`FIFO_FAITHFUL` on the observer's divergence event.

    ``kind`` is the deployment's FIFO construction: ``direct`` / ``chain``
    (as in :func:`repro.desync.transform.desynchronize`) or ``boolean`` —
    the paper's 1-place buffer (:func:`repro.desync.fifo.one_place_fifo`,
    boolean occupancy, capacity 1 only), whose product stays inside the
    fragment the symbolic BDD backend accepts when payloads are boolean.
    """
    deployment = desynchronize(
        program,
        capacities=capacities,
        kind="direct" if kind == "boolean" else kind,
        read_requests=read_requests,
        backpressure=backpressure,
    )
    if kind == "boolean":
        deployment = _booleanize(deployment, program)
    signal_types = {}
    for comp in program.components:
        for name, ty in comp.signals().items():
            signal_types.setdefault(name, ty)
    per_signal: Dict[str, int] = {}
    for ch in deployment.channels:
        per_signal[ch.signal] = per_signal.get(ch.signal, 0) + 1
    forked = {sig for sig, n in per_signal.items() if n > 1}
    observers = []
    obligations = []
    for ch in deployment.channels:
        label = (
            "{}_{}".format(ch.signal, ch.consumer)
            if ch.signal in forked
            else ch.signal
        )
        observers.append(
            flow_observer(
                label,
                ch.write_port,
                ch.read_port,
                ch.ok,
                ch.capacity,
                dtype=signal_types.get(ch.signal, INT),
            )
        )
        obligations.append(
            Obligation(
                label, ch.signal, ch.producer, ch.consumer,
                ch.alarm, NO_OVERFLOW, ch.capacity,
            )
        )
        obligations.append(
            Obligation(
                label, ch.signal, ch.producer, ch.consumer,
                flowdiv_signal(label), FIFO_FAITHFUL, ch.capacity,
            )
        )
    composed = Program(
        program.name + "_prove",
        list(deployment.program.components) + observers,
    )
    return ProductInfo(composed, deployment, tuple(obligations))


def _booleanize(deployment: DesyncResult, program: Program) -> DesyncResult:
    """Swap every channel's n-FIFO for the paper's 1-place buffer.

    The 1-place buffer's state is one boolean plus the data slot, so a
    boolean-payload product is entirely boolean — the shape
    :class:`repro.mc.symbolic.SymbolicChecker` partitions.  Note the
    Section 5.1 accept rule differs from ``n_fifo_direct`` at capacity 1:
    a same-instant read does *not* free the slot for the incoming write,
    so this deployment alarms (slightly) earlier — the proof is about
    this deployment, and the certificate records ``fifo: boolean``.
    """
    from repro.errors import TransformError
    from repro.desync.fifo import one_place_fifo

    signal_types = {}
    for comp in program.components:
        for name, ty in comp.signals().items():
            signal_types.setdefault(name, ty)
    replaced = {}
    for ch in deployment.channels:
        if ch.capacity != 1:
            raise TransformError(
                "boolean fifo kind needs capacity 1 on every channel; "
                "{!r} has {}".format(ch.signal, ch.capacity)
            )
        prefix = "{}_b{}_".format(
            ch.signal, "_" + ch.consumer if ch.read_port.endswith(
                "_" + ch.consumer) else "",
        )
        fifo, ports = one_place_fifo(
            name="Fifo_" + ch.signal,
            dtype=signal_types.get(ch.signal, INT),
            prefix=prefix,
        )
        fifo = fifo.rename({
            ports.msgin: ch.write_port,
            ports.msgout: ch.read_port,
            ports.rreq: ch.rreq,
            ports.full: ch.full,
            ports.alarm: ch.alarm,
            ports.ok: ch.ok,
        })
        replaced[ch.alarm] = fifo
    components = []
    for comp in deployment.program.components:
        swap = next(
            (replaced[a] for a in replaced if a in comp.outputs), None
        )
        components.append(swap if swap is not None else comp)
    return DesyncResult(
        Program(deployment.program.name, components), deployment.channels
    )
