"""A standard library of reusable Signal processes.

These are the small stateful components every Signal design is built
from — the idioms Polychrony ships as library processes.  Each
constructor returns a :class:`~repro.lang.ast.Component` whose port names
are the caller-supplied signal names, ready for synchronous composition
by name fusion (put them in one :class:`~repro.lang.ast.Program` or
absorb them with :meth:`~repro.lang.builder.ComponentBuilder.absorb`).

The ``cell`` operator deserves a note: Signal's ``y := x cell k init v``
("sustain x's last value, visible at clock k") is not primitive; it
expands to ``y := x default (pre v y)`` plus the clock constraint
``y ^= (^x default k)``, which is exactly what :func:`cell` builds.
"""

from __future__ import annotations

from repro.lang.ast import Component, Const, Var, pre
from repro.lang.builder import ComponentBuilder
from repro.lang.types import BOOL, EVENT, INT, Type


def counter(
    tick: str = "tick",
    out: str = "count",
    init: int = 0,
    step: int = 1,
    name: str = "Counter",
) -> Component:
    """``out`` counts activations of ``tick``: init+step, init+2*step, ..."""
    b = ComponentBuilder(name)
    tick_v = b.input(tick, EVENT)
    out_v = b.output(out, INT)
    b.define(out_v, pre(init, out_v) + step)
    b.sync(out_v, tick_v)
    return b.build()


def modular_counter(
    tick: str = "tick",
    out: str = "count",
    modulus: int = 2,
    name: str = "ModCounter",
) -> Component:
    """A wrap-around counter — finite-state, safe for model checking."""
    if modulus < 1:
        raise ValueError("modulus must be >= 1")
    b = ComponentBuilder(name)
    tick_v = b.input(tick, EVENT)
    out_v = b.output(out, INT)
    b.define(out_v, (pre(0, out_v) + 1) % modulus)
    b.sync(out_v, tick_v)
    return b.build()


def cell(
    inp: str,
    out: str,
    clk: str = "",
    init=0,
    dtype: Type = INT,
    name: str = "Cell",
) -> Component:
    """Sample-and-hold: ``out`` carries the last value of ``inp``.

    ``out`` is present at the union of ``inp``'s clock and ``clk`` (an
    event input; omit it for a pure follower present only with ``inp``).
    This is Signal's ``cell`` operator, expanded.
    """
    b = ComponentBuilder(name)
    inp_v = b.input(inp, dtype)
    out_v = b.output(out, dtype)
    if clk:
        clk_v = b.input(clk, EVENT)
        base = b.let("base", EVENT, inp_v.clock().default(clk_v))
    else:
        base = b.let("base", EVENT, inp_v.clock())
    b.define(out_v, inp_v.default(pre(init, out_v)))
    b.sync(out_v, base)
    return b.build()


def rising_edge(
    inp: str,
    out: str,
    name: str = "RisingEdge",
) -> Component:
    """``out`` ticks when boolean ``inp`` goes false -> true.

    The comparison is per-*presence*: edges are detected between
    consecutive occurrences of ``inp`` (absence does not reset).
    """
    b = ComponentBuilder(name)
    inp_v = b.input(inp, BOOL)
    out_v = b.output(out, EVENT)
    b.define(out_v, Const(True).when(inp_v & ~pre(False, inp_v)))
    return b.build()


def falling_edge(inp: str, out: str, name: str = "FallingEdge") -> Component:
    """``out`` ticks when boolean ``inp`` goes true -> false."""
    b = ComponentBuilder(name)
    inp_v = b.input(inp, BOOL)
    out_v = b.output(out, EVENT)
    b.define(out_v, Const(True).when(~inp_v & pre(False, inp_v)))
    return b.build()


def clock_divider(
    tick: str,
    out: str,
    ratio: int,
    name: str = "ClockDivider",
) -> Component:
    """``out`` ticks once every ``ratio`` ticks of ``tick`` (first at #ratio)."""
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    b = ComponentBuilder(name)
    tick_v = b.input(tick, EVENT)
    out_v = b.output(out, EVENT)
    phase = b.local("phase", INT)
    b.define(phase, (pre(0, phase) + 1) % ratio)
    b.sync(phase, tick_v)
    b.define(out_v, Const(True).when(phase.eq(0)))
    return b.build()


def delay_line(
    inp: str,
    out: str,
    depth: int,
    init=0,
    dtype: Type = INT,
    name: str = "DelayLine",
) -> Component:
    """``out`` is ``inp`` delayed by ``depth`` occurrences (synchronous)."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    b = ComponentBuilder(name)
    inp_v = b.input(inp, dtype)
    out_v = b.output(out, dtype)
    prev = inp_v
    for i in range(1, depth):
        stage = b.let("z{}".format(i), dtype, pre(init, prev))
        prev = stage
    b.define(out_v, pre(init, prev))
    return b.build()


def toggle(
    tick: str = "tick",
    out: str = "state",
    init: bool = False,
    name: str = "Toggle",
) -> Component:
    """A 1-bit state flipping at each tick."""
    b = ComponentBuilder(name)
    tick_v = b.input(tick, EVENT)
    out_v = b.output(out, BOOL)
    b.define(out_v, ~pre(init, out_v))
    b.sync(out_v, tick_v)
    return b.build()


def moving_sum(
    inp: str,
    out: str,
    taps: int = 2,
    dtype: Type = INT,
    name: str = "MovingSum",
) -> Component:
    """``out`` = sum of the last ``taps`` occurrences of ``inp``."""
    if taps < 1:
        raise ValueError("taps must be >= 1")
    b = ComponentBuilder(name)
    inp_v = b.input(inp, dtype)
    out_v = b.output(out, dtype)
    expr = inp_v
    prev = inp_v
    for i in range(1, taps):
        stage = b.let("z{}".format(i), dtype, pre(0, prev))
        expr = expr + stage
        prev = stage
    b.define(out_v, expr)
    return b.build()


def watchdog(
    tick: str = "tick",
    kick: str = "kick",
    bark: str = "bark",
    limit: int = 4,
    name: str = "Watchdog",
) -> Component:
    """Barks when more than ``limit`` ticks pass without a kick."""
    if limit < 1:
        raise ValueError("limit must be >= 1")
    b = ComponentBuilder(name)
    tick_v = b.input(tick, EVENT)
    kick_v = b.input(kick, EVENT)
    bark_v = b.output(bark, EVENT)
    base = b.let("base", EVENT, tick_v.default(kick_v))
    n = b.local("n", INT)
    b.define(
        n,
        Const(0).when(kick_v).default((pre(0, n) + 1).when(tick_v)).default(pre(0, n)),
    )
    b.sync(n, base)
    b.define(bark_v, Const(True).when((n > limit)).when(tick_v))
    return b.build()


def latch(
    set_: str,
    reset: str,
    out: str,
    clk: str = "",
    name: str = "Latch",
) -> Component:
    """Set/reset latch: true after ``set_``, false after ``reset``.

    When both arrive at one instant, ``set_`` wins (priority merge).
    ``out`` is present at every set/reset and, when ``clk`` is given, at
    every tick of that observation clock (holding its state meanwhile).
    """
    b = ComponentBuilder(name)
    set_v = b.input(set_, EVENT)
    reset_v = b.input(reset, EVENT)
    out_v = b.output(out, BOOL)
    base_expr = set_v.default(reset_v)
    if clk:
        base_expr = base_expr.default(b.input(clk, EVENT))
    base = b.let("base", EVENT, base_expr)
    b.define(
        out_v,
        Const(True)
        .when(set_v)
        .default(Const(False).when(reset_v))
        .default(pre(False, out_v)),
    )
    b.sync(out_v, base)
    return b.build()
