"""Abstract syntax of the Signal dialect (Figure 1 of the paper).

Core expression forms::

    x := pre init y          delay            (Pre)
    x := y when z            sampling         (When)
    x := y default z         priority merge   (Default)
    x := f(y, z, ...)        pointwise func   (App)

plus the paper's shorthand ``^x`` ("clock of x", i.e. ``true when
(x == x)``) as an explicit :class:`ClockOf` node, and synchronization
constraints ``x ^= y ^= ...`` as :class:`SyncConstraint` statements.

Expressions overload Python operators so components read like Signal
source::

    full = (wr | (fullp & ~rd))
    data = msgin.when(wr).default(pre(0, var("data")))

All nodes are immutable and hashable.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.lang.types import Type


class Span(NamedTuple):
    """A source region (1-based, inclusive start / exclusive end column).

    Statements parsed from text carry a span; statements built
    programmatically (e.g. via :class:`~repro.lang.builder.ComponentBuilder`)
    have ``span=None``.  Spans are carried for diagnostics only: they do not
    participate in structural equality or hashing.
    """

    line: int
    column: int
    end_line: int
    end_column: int


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def as_expr(value) -> "Expr":
    """Coerce a Python value to an expression (constants auto-wrap)."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (bool, int)):
        return Const(value)
    raise TypeError("cannot use {!r} as a signal expression".format(value))


class Expr:
    """Base class of signal expressions."""

    __slots__ = ()

    # -- structure -----------------------------------------------------------

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def map_children(self, fn) -> "Expr":
        """Rebuild this node with ``fn`` applied to each child."""
        return self

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            for node in child.walk():
                yield node

    def free_vars(self) -> frozenset:
        return frozenset(
            node.name for node in self.walk() if isinstance(node, Var)
        )

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        """Substitute variable names according to ``{old: new}``."""
        if isinstance(self, Var):
            return Var(mapping.get(self.name, self.name))
        return self.map_children(lambda e: e.rename(mapping))

    # -- Signal operators ------------------------------------------------------

    def when(self, cond) -> "When":
        return When(self, as_expr(cond))

    def default(self, other) -> "Default":
        return Default(self, as_expr(other))

    def clock(self) -> "ClockOf":
        """``^e``: the pure event marking the instants where ``e`` is present."""
        return ClockOf(self)

    # -- arithmetic / logic sugar ---------------------------------------------

    def __add__(self, other):
        return App("+", (self, as_expr(other)))

    def __radd__(self, other):
        return App("+", (as_expr(other), self))

    def __sub__(self, other):
        return App("-", (self, as_expr(other)))

    def __rsub__(self, other):
        return App("-", (as_expr(other), self))

    def __mul__(self, other):
        return App("*", (self, as_expr(other)))

    def __rmul__(self, other):
        return App("*", (as_expr(other), self))

    def __truediv__(self, other):
        return App("/", (self, as_expr(other)))

    def __mod__(self, other):
        return App("mod", (self, as_expr(other)))

    def __neg__(self):
        return App("neg", (self,))

    def __and__(self, other):
        return App("and", (self, as_expr(other)))

    def __rand__(self, other):
        return App("and", (as_expr(other), self))

    def __or__(self, other):
        return App("or", (self, as_expr(other)))

    def __ror__(self, other):
        return App("or", (as_expr(other), self))

    def __xor__(self, other):
        return App("xor", (self, as_expr(other)))

    def __invert__(self):
        return App("not", (self,))

    def eq(self, other) -> "App":
        return App("==", (self, as_expr(other)))

    def ne(self, other) -> "App":
        return App("/=", (self, as_expr(other)))

    def __lt__(self, other):
        return App("<", (self, as_expr(other)))

    def __le__(self, other):
        return App("<=", (self, as_expr(other)))

    def __gt__(self, other):
        return App(">", (self, as_expr(other)))

    def __ge__(self, other):
        return App(">=", (self, as_expr(other)))

    # NB: __eq__ stays structural equality on nodes; use .eq() for the
    # Signal comparison operator.


class Var(Expr):
    """A signal occurrence."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError("signal name must be a nonempty string")
        self.name = name

    def __repr__(self) -> str:
        return "Var({!r})".format(self.name)

    def __eq__(self, other):
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self):
        return hash(("Var", self.name))


class Const(Expr):
    """A constant; its clock is supplied by the enclosing context."""

    __slots__ = ("value",)

    def __init__(self, value):
        if not isinstance(value, (bool, int)):
            raise ValueError("unsupported constant: {!r}".format(value))
        self.value = value

    def __repr__(self) -> str:
        return "Const({!r})".format(self.value)

    def __eq__(self, other):
        return (
            isinstance(other, Const)
            and other.value == self.value
            and type(other.value) is type(self.value)
        )

    def __hash__(self):
        return hash(("Const", type(self.value).__name__, self.value))


class Pre(Expr):
    """``pre init e``: previous value of ``e``, synchronous with ``e``.

    ``init=None`` denotes an *uninitialized* delay (``pre e`` in source).
    The form parses — so the linter can point at it (rule ``SIG004``) and
    ``repro lint --fix`` can repair it — but it is rejected by the type
    checker and by the simulator.
    """

    __slots__ = ("init", "expr")

    def __init__(self, init, expr: Expr):
        if init is not None and not isinstance(init, (bool, int)):
            raise ValueError("pre initial value must be a constant")
        self.init = init
        self.expr = as_expr(expr)

    def children(self):
        return (self.expr,)

    def map_children(self, fn):
        return Pre(self.init, fn(self.expr))

    def __repr__(self):
        return "Pre({!r}, {!r})".format(self.init, self.expr)

    def __eq__(self, other):
        return (
            isinstance(other, Pre)
            and other.init == self.init
            and type(other.init) is type(self.init)
            and other.expr == self.expr
        )

    def __hash__(self):
        return hash(("Pre", type(self.init).__name__, self.init, self.expr))


class When(Expr):
    """``e when c``: ``e`` sampled where ``c`` is present and true."""

    __slots__ = ("expr", "cond")

    def __init__(self, expr: Expr, cond: Expr):
        self.expr = as_expr(expr)
        self.cond = as_expr(cond)

    def children(self):
        return (self.expr, self.cond)

    def map_children(self, fn):
        return When(fn(self.expr), fn(self.cond))

    def __repr__(self):
        return "When({!r}, {!r})".format(self.expr, self.cond)

    def __eq__(self, other):
        return (
            isinstance(other, When)
            and other.expr == self.expr
            and other.cond == self.cond
        )

    def __hash__(self):
        return hash(("When", self.expr, self.cond))


class Default(Expr):
    """``l default r``: ``l`` where present, else ``r``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = as_expr(left)
        self.right = as_expr(right)

    def children(self):
        return (self.left, self.right)

    def map_children(self, fn):
        return Default(fn(self.left), fn(self.right))

    def __repr__(self):
        return "Default({!r}, {!r})".format(self.left, self.right)

    def __eq__(self, other):
        return (
            isinstance(other, Default)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self):
        return hash(("Default", self.left, self.right))


class App(Expr):
    """``f(e1, ..., en)``: pointwise function on synchronous operands."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: Sequence[Expr]):
        self.op = op
        self.args = tuple(as_expr(a) for a in args)

    def children(self):
        return self.args

    def map_children(self, fn):
        return App(self.op, tuple(fn(a) for a in self.args))

    def __repr__(self):
        return "App({!r}, {!r})".format(self.op, list(self.args))

    def __eq__(self, other):
        return (
            isinstance(other, App)
            and other.op == self.op
            and other.args == self.args
        )

    def __hash__(self):
        return hash(("App", self.op, self.args))


class ClockOf(Expr):
    """``^e``: a pure event present exactly when ``e`` is present.

    The paper treats this as shorthand for ``true when (e == e)``;
    :func:`repro.lang.analysis.normalize_component` performs that lowering.
    """

    __slots__ = ("expr",)

    def __init__(self, expr: Expr):
        self.expr = as_expr(expr)

    def children(self):
        return (self.expr,)

    def map_children(self, fn):
        return ClockOf(fn(self.expr))

    def __repr__(self):
        return "ClockOf({!r})".format(self.expr)

    def __eq__(self, other):
        return isinstance(other, ClockOf) and other.expr == self.expr

    def __hash__(self):
        return hash(("ClockOf", self.expr))


def var(name: str) -> Var:
    return Var(name)


def const(value) -> Const:
    return Const(value)


def pre(init, expr) -> Pre:
    return Pre(init, expr)


# ---------------------------------------------------------------------------
# Statements, components, programs
# ---------------------------------------------------------------------------


class Statement:
    """Base class of component statements."""

    __slots__ = ()


class Equation(Statement):
    """``target := expr``."""

    __slots__ = ("target", "expr", "span")

    def __init__(self, target: str, expr: Expr, span: Optional[Span] = None):
        self.target = target
        self.expr = as_expr(expr)
        self.span = span

    def free_vars(self) -> frozenset:
        return self.expr.free_vars()

    def rename(self, mapping: Mapping[str, str]) -> "Equation":
        return Equation(
            mapping.get(self.target, self.target),
            self.expr.rename(mapping),
            span=self.span,
        )

    def __repr__(self):
        return "Equation({!r}, {!r})".format(self.target, self.expr)

    def __eq__(self, other):
        return (
            isinstance(other, Equation)
            and other.target == self.target
            and other.expr == self.expr
        )

    def __hash__(self):
        return hash(("Equation", self.target, self.expr))


class SyncConstraint(Statement):
    """``x ^= y ^= ...``: the listed signals share one clock."""

    __slots__ = ("names", "span")

    def __init__(self, names: Iterable[str], span: Optional[Span] = None):
        names = tuple(names)
        if len(names) < 2:
            raise ValueError("a synchronization constraint needs >= 2 signals")
        self.names = names
        self.span = span

    def free_vars(self) -> frozenset:
        return frozenset(self.names)

    def rename(self, mapping: Mapping[str, str]) -> "SyncConstraint":
        return SyncConstraint(
            tuple(mapping.get(n, n) for n in self.names), span=self.span
        )

    def __repr__(self):
        return "SyncConstraint({!r})".format(list(self.names))

    def __eq__(self, other):
        return isinstance(other, SyncConstraint) and other.names == self.names

    def __hash__(self):
        return hash(("SyncConstraint", self.names))


class Component:
    """A Signal component: a typed interface plus a set of statements.

    ``inputs``/``outputs``/``locals`` map signal names to value types.
    Interface sets must be pairwise disjoint; every name appearing in a
    statement must be declared.  Deeper well-formedness (single assignment,
    every non-input defined, type agreement) is checked by
    :func:`repro.lang.typecheck.check_component`.
    """

    __slots__ = ("name", "inputs", "outputs", "locals", "statements")

    def __init__(
        self,
        name: str,
        inputs: Mapping[str, Type],
        outputs: Mapping[str, Type],
        locals: Mapping[str, Type],
        statements: Sequence[Statement],
    ):
        self.name = name
        self.inputs: Dict[str, Type] = dict(inputs)
        self.outputs: Dict[str, Type] = dict(outputs)
        self.locals: Dict[str, Type] = dict(locals)
        self.statements: Tuple[Statement, ...] = tuple(statements)
        self._validate()

    def _validate(self) -> None:
        groups = [set(self.inputs), set(self.outputs), set(self.locals)]
        for i in range(3):
            for j in range(i + 1, 3):
                clash = groups[i] & groups[j]
                if clash:
                    raise ValueError(
                        "signals declared twice in {}: {}".format(
                            self.name, sorted(clash)
                        )
                    )
        declared = self.signals()
        for st in self.statements:
            used = set(st.free_vars())
            if isinstance(st, Equation):
                used.add(st.target)
            undeclared = used - set(declared)
            if undeclared:
                raise ValueError(
                    "undeclared signals in {}: {}".format(
                        self.name, sorted(undeclared)
                    )
                )

    # -- access ------------------------------------------------------------

    def signals(self) -> Dict[str, Type]:
        """All declared signals with their types."""
        out = dict(self.inputs)
        out.update(self.outputs)
        out.update(self.locals)
        return out

    def equations(self) -> List[Equation]:
        return [st for st in self.statements if isinstance(st, Equation)]

    def sync_constraints(self) -> List[SyncConstraint]:
        return [st for st in self.statements if isinstance(st, SyncConstraint)]

    def defined_names(self) -> frozenset:
        return frozenset(eq.target for eq in self.equations())

    def interface(self) -> frozenset:
        return frozenset(self.inputs) | frozenset(self.outputs)

    # -- transformation ------------------------------------------------------

    def rename(self, mapping: Mapping[str, str], name: Optional[str] = None) -> "Component":
        """``C[y/x]`` (Definition 5): rename signals throughout.

        Used to instantiate library components, e.g.
        ``1Fifo[full_1, in_1, out_1 / full, in, out]`` in Section 5.1.
        """

        def ren(names: Mapping[str, Type]) -> Dict[str, Type]:
            out = {}
            for old, ty in names.items():
                new = mapping.get(old, old)
                if new in out:
                    raise ValueError("renaming collides on {!r}".format(new))
                out[new] = ty
            return out

        return Component(
            name if name is not None else self.name,
            ren(self.inputs),
            ren(self.outputs),
            ren(self.locals),
            [st.rename(mapping) for st in self.statements],
        )

    def prefixed(self, prefix: str, keep: Iterable[str] = ()) -> "Component":
        """Namespace every signal except ``keep`` with ``prefix``."""
        keep = set(keep)
        mapping = {
            n: "{}{}".format(prefix, n) for n in self.signals() if n not in keep
        }
        return self.rename(mapping)

    def with_statements(self, statements: Sequence[Statement]) -> "Component":
        return Component(self.name, self.inputs, self.outputs, self.locals, statements)

    def __repr__(self):
        return "Component({!r}: {} in, {} out, {} local, {} stmts)".format(
            self.name,
            len(self.inputs),
            len(self.outputs),
            len(self.locals),
            len(self.statements),
        )


class Program:
    """A Signal program: named components composed synchronously.

    Components communicate through equal signal names; the composition's
    denotation is the synchronous parallel composition (Definition 3) of
    the components' denotations.
    """

    __slots__ = ("name", "components")

    def __init__(self, name: str, components: Sequence[Component]):
        self.name = name
        self.components: Tuple[Component, ...] = tuple(components)
        seen = set()
        for comp in self.components:
            if comp.name in seen:
                raise ValueError("duplicate component name {!r}".format(comp.name))
            seen.add(comp.name)

    def component(self, name: str) -> Component:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(name)

    def __repr__(self):
        return "Program({!r}, {} components)".format(
            self.name, len(self.components)
        )
