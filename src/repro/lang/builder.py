"""Fluent construction of Signal components.

Example — the memory cell of Example 1 of the paper::

    b = ComponentBuilder("Cell")
    msgin = b.input("msgin", INT)
    rq = b.input("rq", EVENT)
    msgout = b.output("msgout", INT)
    data = b.local("data", INT)
    b.define(data, msgin.default(pre(0, data)))
    b.define(msgout, data.when(rq))
    cell = b.build()
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.lang.ast import (
    Component,
    Equation,
    Expr,
    Statement,
    SyncConstraint,
    Var,
    as_expr,
)
from repro.lang.types import Type


class ComponentBuilder:
    """Accumulates declarations and statements, then builds a Component."""

    def __init__(self, name: str):
        self.name = name
        self._inputs: Dict[str, Type] = {}
        self._outputs: Dict[str, Type] = {}
        self._locals: Dict[str, Type] = {}
        self._statements: List[Statement] = []

    # -- declarations -----------------------------------------------------

    def _declare(self, table: Dict[str, Type], name: str, ty: Type) -> Var:
        if name in self._inputs or name in self._outputs or name in self._locals:
            raise ValueError("signal {!r} declared twice".format(name))
        table[name] = ty
        return Var(name)

    def input(self, name: str, ty: Type) -> Var:
        return self._declare(self._inputs, name, ty)

    def output(self, name: str, ty: Type) -> Var:
        return self._declare(self._outputs, name, ty)

    def local(self, name: str, ty: Type) -> Var:
        return self._declare(self._locals, name, ty)

    # -- statements ------------------------------------------------------

    def define(self, target: Union[str, Var], expr: Expr) -> "ComponentBuilder":
        name = target.name if isinstance(target, Var) else target
        self._statements.append(Equation(name, as_expr(expr)))
        return self

    def let(self, name: str, ty: Type, expr: Expr) -> Var:
        """Declare a local and define it in one step; returns its Var."""
        v = self.local(name, ty)
        self.define(v, expr)
        return v

    def sync(self, *signals: Union[str, Var]) -> "ComponentBuilder":
        names = [s.name if isinstance(s, Var) else s for s in signals]
        self._statements.append(SyncConstraint(names))
        return self

    # -- composition --------------------------------------------------------

    def absorb(self, component: Component, rename=None) -> "ComponentBuilder":
        """Inline another component's equations into this builder.

        ``rename`` (``{old: new}``) wires the sub-component's ports to this
        builder's signals.  Every signal of the sub-component that is not
        already declared here becomes a local; statements are appended
        verbatim.  This is synchronous composition by name fusion, the
        composition used throughout Section 5.1 of the paper.
        """
        comp = component.rename(rename) if rename else component
        declared = set(self._inputs) | set(self._outputs) | set(self._locals)
        for sig, ty in comp.signals().items():
            if sig not in declared:
                self._locals[sig] = ty
                declared.add(sig)
        self._statements.extend(comp.statements)
        return self

    # -- finalization -----------------------------------------------------

    def build(self) -> Component:
        return Component(
            self.name, self._inputs, self._outputs, self._locals, self._statements
        )
