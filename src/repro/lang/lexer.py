"""Lexer for the textual Signal dialect.

Token kinds: ``IDENT``, ``INT``, keywords (one kind per keyword), and
punctuation/operator kinds named after their spelling.  Comments run from
``%`` to the end of the line (as in Signal) and ``#`` is accepted too.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

from repro.errors import SignalSyntaxError


class Token(NamedTuple):
    kind: str
    value: str
    line: int
    column: int


KEYWORDS = frozenset(
    [
        "process",
        "program",
        "where",
        "end",
        "when",
        "default",
        "pre",
        "not",
        "and",
        "or",
        "xor",
        "mod",
        "true",
        "false",
        "integer",
        "boolean",
        "event",
    ]
)

# Longest first so that multi-character operators win.
SYMBOLS = [
    "(|",
    "|)",
    ":=",
    "^=",
    "==",
    "/=",
    "<=",
    ">=",
    "|",
    "^",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "(",
    ")",
    ";",
    ",",
    "?",
    "!",
]


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`SignalSyntaxError` on bad input."""
    tokens: List[Token] = []
    line, col = 1, 1
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch in "%#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            tokens.append(Token("INT", text[start:i], line, col))
            col += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            kind = word if word in KEYWORDS else "IDENT"
            tokens.append(Token(kind, word, line, col))
            col += i - start
            continue
        for sym in SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token(sym, sym, line, col))
                i += len(sym)
                col += len(sym)
                break
        else:
            raise SignalSyntaxError(
                "unexpected character {!r}".format(ch), line, col
            )
    tokens.append(Token("EOF", "", line, col))
    return tokens
