"""Static analyses over Signal components and programs.

- signal classification and definition accounting;
- instantaneous-dependency graphs and causality-cycle detection;
- inter-component data-dependency extraction (who produces what — the
  ``P ->x Q`` orientation of Definition 7);
- program flattening (synchronous composition by name fusion);
- normalization to core form (Figure 1): lowering ``^e`` and splitting
  nested expressions into three-address equations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, NamedTuple, Sequence, Set, Tuple

from repro.errors import CausalityError, SignalTypeError
from repro.lang.ast import (
    App,
    ClockOf,
    Component,
    Const,
    Default,
    Equation,
    Expr,
    Pre,
    Program,
    Statement,
    SyncConstraint,
    Var,
    When,
)
from repro.lang.types import BOOL, EVENT, Type


def free_vars(expr: Expr) -> FrozenSet[str]:
    """The signals read by ``expr`` (including under ``pre``)."""
    return expr.free_vars()


class SignalClasses(NamedTuple):
    inputs: FrozenSet[str]
    outputs: FrozenSet[str]
    locals: FrozenSet[str]
    defined: FrozenSet[str]
    undefined: FrozenSet[str]  # non-inputs lacking a defining equation


def classify_signals(comp: Component) -> SignalClasses:
    defined = comp.defined_names()
    non_inputs = frozenset(comp.outputs) | frozenset(comp.locals)
    return SignalClasses(
        inputs=frozenset(comp.inputs),
        outputs=frozenset(comp.outputs),
        locals=frozenset(comp.locals),
        defined=defined,
        undefined=non_inputs - defined,
    )


def _instantaneous_deps(expr: Expr) -> FrozenSet[str]:
    """Signals whose *current value* feeds ``expr``.

    Two operators are cut:

    - ``pre``: its value is delayed (the rule that makes ``x := x + 1``
      cyclic but ``x := pre 0 x + 1`` well-founded);
    - ``^e``: its value is the constant ``true``; only the *presence* of
      ``e`` flows through, and presence resolution is a monotone fixpoint
      that cannot produce a value-computation cycle (rings of components
      legitimately close presence loops through their channel clocks).
    """
    if isinstance(expr, (Pre, ClockOf)):
        return frozenset()
    if isinstance(expr, Var):
        return frozenset([expr.name])
    out: Set[str] = set()
    for child in expr.children():
        out |= _instantaneous_deps(child)
    return frozenset(out)


def dependency_graph(comp: Component, instantaneous: bool = True) -> Dict[str, FrozenSet[str]]:
    """``target -> signals it depends on``, per equation.

    With ``instantaneous=False``, delayed (``pre``) dependencies are
    included as well — the full data-flow graph.
    """
    graph: Dict[str, FrozenSet[str]] = {}
    for eq in comp.equations():
        if instantaneous:
            deps = _instantaneous_deps(eq.expr)
        else:
            deps = eq.expr.free_vars()
        graph[eq.target] = graph.get(eq.target, frozenset()) | deps
    return graph


def _canonical_cycle(scc: List[str], graph: Mapping[str, FrozenSet[str]]) -> List[str]:
    """One concrete dependency cycle through ``scc``, rotation-canonical.

    Walks from the smallest member, always taking the smallest in-SCC
    successor, until a node repeats; the cycle found is rotated so its
    lexicographically smallest member comes first.  Fully deterministic:
    the same component always yields the same cycle witness.
    """
    members = set(scc)
    if len(scc) == 1:
        return [scc[0]]
    path: List[str] = []
    seen_at: Dict[str, int] = {}
    v = min(scc)
    while v not in seen_at:
        seen_at[v] = len(path)
        path.append(v)
        v = min(w for w in graph.get(v, ()) if w in members)
    cycle = path[seen_at[v]:]
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


def instantaneous_cycles(comp: Component) -> List[List[str]]:
    """Cycles of instantaneous dependencies (Tarjan SCCs of size > 1, plus
    self-loops).  A nonempty result means no reaction order exists.

    Each cycle is reported as a concrete dependency path in rotation-
    canonical form (smallest member first, following dependency edges), and
    the list of cycles is sorted — the output is byte-stable across runs,
    which diagnostics (``repro lint``) rely on.
    """
    graph = dependency_graph(comp, instantaneous=True)
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(graph.get(v, ())):
            if w not in graph:
                continue  # inputs terminate the search
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            scc = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                scc.append(w)
                if w == v:
                    break
            if len(scc) > 1 or v in graph.get(v, ()):
                cycles.append(_canonical_cycle(sorted(scc), graph))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sorted(cycles)


def check_causality(comp: Component) -> None:
    """Raise :class:`CausalityError` when instantaneous cycles exist."""
    cycles = instantaneous_cycles(comp)
    if cycles:
        raise CausalityError(
            "{}: instantaneous dependency cycles: {}".format(comp.name, cycles)
        )


class SharedSignal(NamedTuple):
    name: str
    producer: str  # first producing component, or "" (environment-produced)
    consumers: Tuple[str, ...]
    # every component writing the signal, in program order.  Well-formed
    # programs have at most one; len > 1 is a multi-driver race (the lint
    # rule SIG002 reports it; the type checker rejects it outright).
    producers: Tuple[str, ...] = ()


def shared_signals(program: Program) -> List[SharedSignal]:
    """Signals visible to more than one component, with the ``P ->x Q``
    orientation of Definition 7 (producer vs consumers).

    Only *interface* signals participate: component locals — including the
    ``<component>__``-namespaced locals minted by :func:`flatten_program`
    with ``namespace_locals=True`` — are private and never reported, so a
    local renamed apart from a same-named sibling cannot show up as shared.

    When several components write one signal, all writers are listed in
    ``producers`` (program order) and none of them appears in
    ``consumers``; ``producer`` stays the first writer for compatibility.
    """
    producers: Dict[str, List[str]] = {}
    users: Dict[str, List[str]] = {}
    for comp in program.components:
        visible = set(comp.inputs) | set(comp.outputs)
        for eq in comp.equations():
            if eq.target in visible:
                plist = producers.setdefault(eq.target, [])
                if comp.name not in plist:
                    plist.append(comp.name)
        for name in visible:
            users.setdefault(name, []).append(comp.name)
    out = []
    for name, comps in sorted(users.items()):
        if len(comps) < 2:
            continue
        plist = tuple(producers.get(name, ()))
        producer = plist[0] if plist else ""
        consumers = tuple(c for c in comps if c not in plist)
        out.append(SharedSignal(name, producer, consumers, plist))
    return out


def flatten_program(program: Program, namespace_locals: bool = True) -> Component:
    """Fuse all components into one (synchronous composition by names).

    Locals are prefixed ``<component>__`` when ``namespace_locals`` so
    same-named private state in different components cannot collide.  The
    flat component's inputs are the signals nobody defines; its outputs are
    every defined interface signal (so traces of the composition remain
    observable); locals of members stay local.
    """
    inputs: Dict[str, Type] = {}
    outputs: Dict[str, Type] = {}
    locals_: Dict[str, Type] = {}
    statements: List[Statement] = []
    defined: Set[str] = set()
    iface_types: Dict[str, Type] = {}

    renamed: List[Component] = []
    for comp in program.components:
        if namespace_locals:
            mapping = {n: "{}__{}".format(comp.name, n) for n in comp.locals}
            comp = comp.rename(mapping)
        renamed.append(comp)

    for comp in renamed:
        for name, ty in comp.locals.items():
            if name in locals_:
                raise SignalTypeError(
                    "local {!r} defined in two components; "
                    "use namespace_locals=True".format(name)
                )
            locals_[name] = ty
        for name, ty in list(comp.inputs.items()) + list(comp.outputs.items()):
            if name in iface_types and iface_types[name] is not ty:
                raise SignalTypeError(
                    "shared signal {!r} declared with two types".format(name)
                )
            iface_types[name] = ty
        defined |= comp.defined_names()
        statements.extend(comp.statements)

    for name, ty in iface_types.items():
        if name in defined:
            outputs[name] = ty
        else:
            inputs[name] = ty
    # locals defined nowhere would be free: surface them as inputs
    for name in list(locals_):
        if name not in defined:
            inputs[name] = locals_.pop(name)

    return Component(program.name, inputs, outputs, locals_, statements)


# -- normalization to core form ------------------------------------------------


class _FreshNames:
    def __init__(self, taken):
        self._taken = set(taken)
        self._counter = 0

    def fresh(self, hint: str = "t") -> str:
        while True:
            name = "_{}{}".format(hint, self._counter)
            self._counter += 1
            if name not in self._taken:
                self._taken.add(name)
                return name


def _lower_clockof(expr: Expr) -> Expr:
    """``^e`` -> ``true when (e == e)`` (the paper's shorthand, Section 3)."""
    if isinstance(expr, ClockOf):
        inner = _lower_clockof(expr.expr)
        return When(Const(True), App("==", (inner, inner)))
    return expr.map_children(_lower_clockof)


def _is_core_operand(expr: Expr) -> bool:
    return isinstance(expr, (Var, Const))


def normalize_component(
    comp: Component, lower_clocks: bool = True, to_core: bool = False
) -> Component:
    """Rewrite a component toward the core syntax of Figure 1.

    ``lower_clocks`` replaces ``^e`` by ``true when (e == e)``.
    ``to_core`` additionally introduces fresh locals so every equation has
    exactly one operator over variables/constants (three-address form).
    Fresh locals are typed ``boolean`` when the sub-expression is a
    condition position, else they inherit no declaration-level type and are
    given ``boolean``/``integer`` by a tiny local inference; to keep this
    pass independent of full typing, fresh locals are declared with the
    type inferred by :func:`repro.lang.typecheck.infer_type`.
    """
    statements: List[Statement] = list(comp.statements)
    if lower_clocks:
        statements = [
            Equation(st.target, _lower_clockof(st.expr))
            if isinstance(st, Equation)
            else st
            for st in statements
        ]
    if not to_core:
        return comp.with_statements(statements)

    from repro.lang.typecheck import infer_type  # local import to avoid a cycle

    env = dict(comp.signals())
    fresh = _FreshNames(env)
    new_locals: Dict[str, Type] = {}
    out_statements: List[Statement] = []

    def hoist(expr: Expr) -> Expr:
        """Return a Var/Const for ``expr``, emitting defining equations."""
        if _is_core_operand(expr):
            return expr
        flat = expr.map_children(hoist)
        name = fresh.fresh()
        ty = infer_type(flat, env)
        env[name] = ty
        new_locals[name] = ty
        out_statements.append(Equation(name, flat))
        return Var(name)

    for st in statements:
        if isinstance(st, SyncConstraint):
            out_statements.append(st)
            continue
        flat = st.expr.map_children(hoist)
        out_statements.append(Equation(st.target, flat))

    locals_ = dict(comp.locals)
    locals_.update(new_locals)
    return Component(comp.name, comp.inputs, comp.outputs, locals_, out_statements)
