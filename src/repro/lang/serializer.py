"""JSON (de)serialization of Signal programs.

A stable interchange format so designs survive outside Python: every AST
node maps to a tagged JSON object, components and programs to plain
dictionaries.  ``loads(dumps(x)) == x`` on every well-formed design (a
tested property).

Schema (informal)::

    expr      := {"op": "var", "name": str}
               | {"op": "const", "value": bool|int, "type": "boolean"|"integer"}
               | {"op": "pre", "init": ..., "expr": expr}
               | {"op": "when", "expr": expr, "cond": expr}
               | {"op": "default", "left": expr, "right": expr}
               | {"op": "clock", "expr": expr}
               | {"op": "app", "fn": str, "args": [expr]}
    statement := {"eq": str, "expr": expr} | {"sync": [str]}
    component := {"name": str, "inputs": {str: type}, "outputs": ...,
                  "locals": ..., "statements": [statement]}
    program   := {"name": str, "components": [component]}
"""

from __future__ import annotations

import json
from typing import Dict

from repro.errors import ReproError
from repro.lang.ast import (
    App,
    ClockOf,
    Component,
    Const,
    Default,
    Equation,
    Expr,
    Pre,
    Program,
    Statement,
    SyncConstraint,
    Var,
    When,
)
from repro.lang.types import TYPES_BY_NAME, Type


class SerializationError(ReproError):
    """Malformed document given to :func:`loads` / :func:`expr_from_dict`."""


def _const_value_to_dict(value):
    return {
        "value": value,
        "type": "boolean" if isinstance(value, bool) else "integer",
    }


def _const_value_from_dict(d):
    value = d["value"]
    ty = d.get("type", "integer")
    if ty == "boolean":
        return bool(value)
    if ty == "integer":
        return int(value)
    raise SerializationError("unknown constant type {!r}".format(ty))


def expr_to_dict(expr: Expr) -> Dict:
    if isinstance(expr, Var):
        return {"op": "var", "name": expr.name}
    if isinstance(expr, Const):
        out = {"op": "const"}
        out.update(_const_value_to_dict(expr.value))
        return out
    if isinstance(expr, Pre):
        return {
            "op": "pre",
            "init": None if expr.init is None else _const_value_to_dict(expr.init),
            "expr": expr_to_dict(expr.expr),
        }
    if isinstance(expr, When):
        return {
            "op": "when",
            "expr": expr_to_dict(expr.expr),
            "cond": expr_to_dict(expr.cond),
        }
    if isinstance(expr, Default):
        return {
            "op": "default",
            "left": expr_to_dict(expr.left),
            "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, ClockOf):
        return {"op": "clock", "expr": expr_to_dict(expr.expr)}
    if isinstance(expr, App):
        return {
            "op": "app",
            "fn": expr.op,
            "args": [expr_to_dict(a) for a in expr.args],
        }
    raise SerializationError("cannot serialize {!r}".format(expr))


def expr_from_dict(d: Dict) -> Expr:
    try:
        op = d["op"]
    except (TypeError, KeyError):
        raise SerializationError("expression object needs an 'op': {!r}".format(d))
    if op == "var":
        return Var(d["name"])
    if op == "const":
        return Const(_const_value_from_dict(d))
    if op == "pre":
        init = d.get("init")
        return Pre(
            None if init is None else _const_value_from_dict(init),
            expr_from_dict(d["expr"]),
        )
    if op == "when":
        return When(expr_from_dict(d["expr"]), expr_from_dict(d["cond"]))
    if op == "default":
        return Default(expr_from_dict(d["left"]), expr_from_dict(d["right"]))
    if op == "clock":
        return ClockOf(expr_from_dict(d["expr"]))
    if op == "app":
        return App(d["fn"], tuple(expr_from_dict(a) for a in d["args"]))
    raise SerializationError("unknown expression op {!r}".format(op))


def _statement_to_dict(st: Statement) -> Dict:
    if isinstance(st, Equation):
        return {"eq": st.target, "expr": expr_to_dict(st.expr)}
    if isinstance(st, SyncConstraint):
        return {"sync": list(st.names)}
    raise SerializationError("cannot serialize {!r}".format(st))


def _statement_from_dict(d: Dict) -> Statement:
    if "eq" in d:
        return Equation(d["eq"], expr_from_dict(d["expr"]))
    if "sync" in d:
        return SyncConstraint(d["sync"])
    raise SerializationError("unknown statement {!r}".format(d))


def _types_to_dict(table: Dict[str, Type]) -> Dict[str, str]:
    return {name: ty.name for name, ty in table.items()}


def _types_from_dict(d: Dict[str, str]) -> Dict[str, Type]:
    out = {}
    for name, tyname in d.items():
        try:
            out[name] = TYPES_BY_NAME[tyname]
        except KeyError:
            raise SerializationError("unknown type {!r}".format(tyname))
    return out


def component_to_dict(comp: Component) -> Dict:
    return {
        "name": comp.name,
        "inputs": _types_to_dict(comp.inputs),
        "outputs": _types_to_dict(comp.outputs),
        "locals": _types_to_dict(comp.locals),
        "statements": [_statement_to_dict(st) for st in comp.statements],
    }


def component_from_dict(d: Dict) -> Component:
    try:
        return Component(
            d["name"],
            _types_from_dict(d.get("inputs", {})),
            _types_from_dict(d.get("outputs", {})),
            _types_from_dict(d.get("locals", {})),
            [_statement_from_dict(st) for st in d.get("statements", [])],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed component: {}".format(exc))


def program_to_dict(program: Program) -> Dict:
    return {
        "name": program.name,
        "components": [component_to_dict(c) for c in program.components],
    }


def program_from_dict(d: Dict) -> Program:
    try:
        return Program(
            d["name"], [component_from_dict(c) for c in d.get("components", [])]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError("malformed program: {}".format(exc))


def dumps(design, indent=2) -> str:
    """Serialize a Component or Program to JSON text."""
    if isinstance(design, Program):
        doc = {"kind": "program", **program_to_dict(design)}
    elif isinstance(design, Component):
        doc = {"kind": "component", **component_to_dict(design)}
    else:
        raise SerializationError("cannot serialize {!r}".format(design))
    return json.dumps(doc, indent=indent, sort_keys=True)


def loads(text: str):
    """Parse JSON text back to a Component or Program."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError("invalid JSON: {}".format(exc))
    kind = doc.get("kind")
    if kind == "program":
        return program_from_dict(doc)
    if kind == "component":
        return component_from_dict(doc)
    raise SerializationError("document kind must be 'program' or 'component'")
