"""Recursive-descent parser for the textual Signal dialect.

Grammar (EBNF; ``%`` comments; see the paper's Figure 1 for the abstract
syntax this concretizes)::

    file        ::= component+
    component   ::= "process" IDENT "=" "(" iodecl* ")"
                    "(|" statement ("|" statement)* "|)"
                    ["where" vardecl*] "end"
    iodecl      ::= ("?" | "!") type IDENT ("," IDENT)* ";"
    vardecl     ::= type IDENT ("," IDENT)* ";"
    type        ::= "integer" | "boolean" | "event"
    statement   ::= IDENT ":=" expr
                  | IDENT "^=" IDENT ("^=" IDENT)*
    expr        ::= dexpr
    dexpr       ::= wexpr ("default" wexpr)*          % lowest precedence
    wexpr       ::= oexpr ("when" oexpr)*
    oexpr       ::= aexpr (("or" | "xor") aexpr)*
    aexpr       ::= nexpr ("and" nexpr)*
    nexpr       ::= "not" nexpr | cexpr
    cexpr       ::= sexpr [("==" | "=" | "/=" | "<" | "<=" | ">" | ">=") sexpr]
    sexpr       ::= mexpr (("+" | "-") mexpr)*
    mexpr       ::= uexpr (("*" | "/" | "mod") uexpr)*
    uexpr       ::= "-" uexpr | "pre" [literal] uexpr | "^" uexpr | atom
    atom        ::= IDENT ["(" expr ("," expr)* ")"]   % function call
                  | literal | "(" expr ")"
    literal     ::= INT | "true" | "false"

``=`` is accepted as a synonym of ``==`` so the paper's equations paste in
directly.  ``pre`` without a literal parses to an *uninitialized* delay
(``Pre(None, ...)``) so the linter can point at it; the type checker
rejects it.

Each parsed statement carries a :class:`~repro.lang.ast.Span` covering its
source extent, used by diagnostics.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import SignalSyntaxError
from repro.lang.ast import (
    App,
    ClockOf,
    Component,
    Const,
    Default,
    Equation,
    Expr,
    Pre,
    Program,
    Span,
    Statement,
    SyncConstraint,
    Var,
    When,
)
from repro.lang.lexer import Token, tokenize
from repro.lang.types import BUILTIN_FUNCTIONS, TYPES_BY_NAME, Type


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self) -> Token:
        return self._tokens[self._pos]

    def next(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    def accept(self, kind: str):
        if self.at(kind):
            return self.next()
        return None

    def expect(self, kind: str) -> Token:
        tok = self.peek()
        if tok.kind != kind:
            raise SignalSyntaxError(
                "expected {!r}, found {!r}".format(kind, tok.value or tok.kind),
                tok.line,
                tok.column,
            )
        return self.next()

    def error(self, message: str):
        tok = self.peek()
        raise SignalSyntaxError(message, tok.line, tok.column)

    # -- grammar ---------------------------------------------------------

    def parse_file(self) -> List[Component]:
        components = []
        while not self.at("EOF"):
            components.append(self.parse_component())
        if not components:
            self.error("empty input: expected at least one process")
        return components

    def parse_component(self) -> Component:
        self.expect("process")
        name = self.expect("IDENT").value
        self.expect("=")
        inputs: Dict[str, Type] = {}
        outputs: Dict[str, Type] = {}
        self.expect("(")
        while not self.accept(")"):
            if self.accept("?"):
                table = inputs
            elif self.accept("!"):
                table = outputs
            else:
                self.error("expected '?' (input) or '!' (output) declaration")
            ty, names = self.parse_decl()
            for n in names:
                if n in inputs or n in outputs:
                    self.error("signal {!r} declared twice".format(n))
                table[n] = ty
            self.expect(";")
        statements = self.parse_body()
        locals_: Dict[str, Type] = {}
        if self.accept("where"):
            while not self.at("end"):
                ty, names = self.parse_decl()
                for n in names:
                    if n in inputs or n in outputs or n in locals_:
                        self.error("signal {!r} declared twice".format(n))
                    locals_[n] = ty
                self.expect(";")
        self.expect("end")
        try:
            return Component(name, inputs, outputs, locals_, statements)
        except ValueError as exc:
            tok = self.peek()
            raise SignalSyntaxError(str(exc), tok.line, tok.column)

    def parse_decl(self) -> Tuple[Type, List[str]]:
        tok = self.peek()
        if tok.kind not in TYPES_BY_NAME:
            self.error("expected a type (integer, boolean, event)")
        self.next()
        ty = TYPES_BY_NAME[tok.kind]
        names = [self.expect("IDENT").value]
        while self.accept(","):
            names.append(self.expect("IDENT").value)
        return ty, names

    def parse_body(self) -> List[Statement]:
        self.expect("(|")
        statements = [self.parse_statement()]
        while self.accept("|"):
            statements.append(self.parse_statement())
        self.expect("|)")
        return statements

    def parse_statement(self) -> Statement:
        start = self.peek()
        target = self.expect("IDENT").value
        if self.accept("^="):
            names = [target, self.expect("IDENT").value]
            while self.accept("^="):
                names.append(self.expect("IDENT").value)
            return SyncConstraint(names, span=self._span_from(start))
        self.expect(":=")
        expr = self.parse_expr()
        return Equation(target, expr, span=self._span_from(start))

    def _span_from(self, start: Token) -> Span:
        last = self._tokens[self._pos - 1]
        return Span(
            start.line,
            start.column,
            last.line,
            last.column + len(last.value or last.kind),
        )

    # expressions, lowest precedence first ---------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_default()

    def parse_default(self) -> Expr:
        expr = self.parse_when()
        while self.accept("default"):
            expr = Default(expr, self.parse_when())
        return expr

    def parse_when(self) -> Expr:
        expr = self.parse_or()
        while self.accept("when"):
            expr = When(expr, self.parse_or())
        return expr

    def parse_or(self) -> Expr:
        expr = self.parse_and()
        while True:
            if self.accept("or"):
                expr = App("or", (expr, self.parse_and()))
            elif self.accept("xor"):
                expr = App("xor", (expr, self.parse_and()))
            else:
                return expr

    def parse_and(self) -> Expr:
        expr = self.parse_not()
        while self.accept("and"):
            expr = App("and", (expr, self.parse_not()))
        return expr

    def parse_not(self) -> Expr:
        if self.accept("not"):
            return App("not", (self.parse_not(),))
        return self.parse_cmp()

    def parse_cmp(self) -> Expr:
        expr = self.parse_sum()
        mapping = {"==": "==", "=": "==", "/=": "/=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
        kind = self.peek().kind
        if kind in mapping:
            self.next()
            return App(mapping[kind], (expr, self.parse_sum()))
        return expr

    def parse_sum(self) -> Expr:
        expr = self.parse_product()
        while True:
            if self.accept("+"):
                expr = App("+", (expr, self.parse_product()))
            elif self.accept("-"):
                expr = App("-", (expr, self.parse_product()))
            else:
                return expr

    def parse_product(self) -> Expr:
        expr = self.parse_unary()
        while True:
            if self.accept("*"):
                expr = App("*", (expr, self.parse_unary()))
            elif self.accept("/"):
                expr = App("/", (expr, self.parse_unary()))
            elif self.accept("mod"):
                expr = App("mod", (expr, self.parse_unary()))
            else:
                return expr

    def parse_unary(self) -> Expr:
        if self.accept("-"):
            if self.at("INT"):
                return Const(-int(self.next().value))
            return App("neg", (self.parse_unary(),))
        if self.accept("^"):
            return ClockOf(self.parse_unary())
        if self.accept("pre"):
            nxt = self.peek().kind
            has_literal = nxt in ("INT", "true", "false") or (
                nxt == "-" and self._tokens[self._pos + 1].kind == "INT"
            )
            if has_literal:
                init = self.parse_literal()
                return Pre(init.value, self.parse_unary())
            return Pre(None, self.parse_unary())
        return self.parse_atom()

    def parse_literal(self) -> Const:
        if self.at("INT"):
            return Const(int(self.next().value))
        if self.accept("true"):
            return Const(True)
        if self.accept("false"):
            return Const(False)
        if self.accept("-"):
            tok = self.expect("INT")
            return Const(-int(tok.value))
        self.error("expected a literal (integer, true, false)")

    def parse_atom(self) -> Expr:
        tok = self.peek()
        if tok.kind == "IDENT":
            self.next()
            if self.accept("("):
                if tok.value not in BUILTIN_FUNCTIONS:
                    raise SignalSyntaxError(
                        "unknown function {!r}".format(tok.value),
                        tok.line,
                        tok.column,
                    )
                args = [self.parse_expr()]
                while self.accept(","):
                    args.append(self.parse_expr())
                self.expect(")")
                return App(tok.value, tuple(args))
            return Var(tok.value)
        if tok.kind in ("INT", "true", "false"):
            return self.parse_literal()
        if self.accept("("):
            expr = self.parse_expr()
            self.expect(")")
            return expr
        self.error("expected an expression")


def parse_expression(text: str) -> Expr:
    """Parse a single expression (useful in tests and the REPL)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect("EOF")
    return expr


def parse_component(text: str) -> Component:
    """Parse exactly one ``process ... end`` definition."""
    parser = _Parser(tokenize(text))
    comp = parser.parse_component()
    parser.expect("EOF")
    return comp


def parse_program(text: str, name: str = "main") -> Program:
    """Parse one or more process definitions into a Program."""
    parser = _Parser(tokenize(text))
    return Program(name, parser.parse_file())
