"""Graph exports (Graphviz DOT) for designs and analyses.

Three views, each returned as a DOT document string:

- :func:`signal_graph_dot` — the (instantaneous or full) signal
  dependency graph of a component; delayed edges (through ``pre``) are
  dashed, inputs are boxes, outputs are double circles;
- :func:`program_graph_dot` — the component topology of a program: one
  node per component, one edge per shared signal, oriented
  producer → consumer (Definition 7's ``P ->x Q``), which is the picture
  of Figure 3;
- :func:`clock_graph_dot` — the clock hierarchy: one node per synchrony
  class, subset edges child → parent.
"""

from __future__ import annotations

from typing import Optional

from repro.clocks.hierarchy import ClockAnalysis, analyze_clocks
from repro.lang.analysis import dependency_graph, shared_signals
from repro.lang.ast import Component, Program


def _quote(name: str) -> str:
    return '"{}"'.format(name.replace('"', '\\"'))


def signal_graph_dot(comp: Component, instantaneous_only: bool = False) -> str:
    """The signal dependency graph of a component.

    Solid edges are instantaneous dependencies, dashed edges go through a
    delay (``pre``); set ``instantaneous_only`` to drop the dashed ones.
    """
    inst = dependency_graph(comp, instantaneous=True)
    full = dependency_graph(comp, instantaneous=False)
    lines = ["digraph {} {{".format(_quote(comp.name)), "  rankdir=LR;"]
    for name in comp.inputs:
        lines.append("  {} [shape=box];".format(_quote(name)))
    for name in comp.outputs:
        lines.append("  {} [shape=doublecircle];".format(_quote(name)))
    for name in comp.locals:
        lines.append("  {} [shape=ellipse];".format(_quote(name)))
    for target in sorted(full):
        instant = inst.get(target, frozenset())
        for dep in sorted(full[target]):
            if dep in instant:
                lines.append("  {} -> {};".format(_quote(dep), _quote(target)))
            elif not instantaneous_only:
                lines.append(
                    "  {} -> {} [style=dashed, label=pre];".format(
                        _quote(dep), _quote(target)
                    )
                )
    lines.append("}")
    return "\n".join(lines)


def program_graph_dot(program: Program) -> str:
    """Component topology: producer -> consumer per shared signal."""
    lines = ["digraph {} {{".format(_quote(program.name)), "  rankdir=LR;"]
    for comp in program.components:
        lines.append("  {} [shape=component];".format(_quote(comp.name)))
    env_used = False
    for s in shared_signals(program):
        if s.producer:
            for consumer in s.consumers:
                lines.append(
                    "  {} -> {} [label={}];".format(
                        _quote(s.producer), _quote(consumer), _quote(s.name)
                    )
                )
        else:
            if not env_used:
                lines.append('  "env" [shape=plaintext];')
                env_used = True
            for consumer in s.consumers:
                lines.append(
                    '  "env" -> {} [label={}, style=dotted];'.format(
                        _quote(consumer), _quote(s.name)
                    )
                )
    lines.append("}")
    return "\n".join(lines)


def clock_graph_dot(
    comp: Component, analysis: Optional[ClockAnalysis] = None
) -> str:
    """The clock hierarchy: synchrony classes with subset edges."""
    if analysis is None:
        analysis = analyze_clocks(comp)
    lines = ['digraph clocks {', "  rankdir=BT;"]
    for rep, members in sorted(analysis.classes.items()):
        label = "{{{}}}".format(", ".join(sorted(members)))
        attrs = []
        if rep == analysis.master:
            attrs.append("penwidth=2")
        if rep in analysis.free:
            attrs.append("color=red")
        if rep in analysis.dead:
            attrs.append("style=dotted")
        lines.append(
            "  {} [label={}{}];".format(
                _quote(rep),
                _quote(label),
                (", " + ", ".join(attrs)) if attrs else "",
            )
        )
    for rep, ups in sorted(analysis.subset.items()):
        for up in sorted(ups):
            if up != rep:
                lines.append("  {} -> {};".format(_quote(rep), _quote(up)))
    lines.append("}")
    return "\n".join(lines)
