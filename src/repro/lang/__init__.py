"""The Signal language frontend.

Implements the abstract syntax of core Signal (Figure 1 of the paper) with
the usual derived operators, plus:

- :mod:`repro.lang.ast` — expression and statement nodes, components and
  programs, with operator-overloading so ASTs read like Signal equations;
- :mod:`repro.lang.types` — the small value-type system (event, boolean,
  integer) and the builtin function table;
- :mod:`repro.lang.builder` — a fluent builder for components;
- :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` — a concrete textual
  syntax close to Signal's;
- :mod:`repro.lang.printer` — pretty printer (round-trips with the parser);
- :mod:`repro.lang.typecheck` — static checks;
- :mod:`repro.lang.analysis` — signal classification, dependency graphs,
  program flattening, core-form normalization.
"""

from repro.lang.ast import (
    App,
    ClockOf,
    Component,
    Const,
    Default,
    Equation,
    Expr,
    Pre,
    Program,
    SyncConstraint,
    Var,
    When,
    const,
    pre,
    var,
)
from repro.lang.types import BOOL, EVENT, INT, Type, BUILTIN_FUNCTIONS
from repro.lang.builder import ComponentBuilder
from repro.lang.parser import parse_program, parse_component, parse_expression
from repro.lang.printer import (
    format_component,
    format_expression,
    format_program,
)
from repro.lang.typecheck import check_component, check_program
from repro.lang.optimize import (
    eliminate_dead_code,
    fold_component,
    fold_constants,
    inline_aliases,
    optimize_component,
)
from repro.lang.analysis import (
    classify_signals,
    dependency_graph,
    flatten_program,
    free_vars,
    instantaneous_cycles,
    normalize_component,
    shared_signals,
)

__all__ = [
    "App",
    "ClockOf",
    "Component",
    "Const",
    "Default",
    "Equation",
    "Expr",
    "Pre",
    "Program",
    "SyncConstraint",
    "Var",
    "When",
    "const",
    "pre",
    "var",
    "BOOL",
    "EVENT",
    "INT",
    "Type",
    "BUILTIN_FUNCTIONS",
    "ComponentBuilder",
    "parse_program",
    "parse_component",
    "parse_expression",
    "format_component",
    "format_expression",
    "format_program",
    "check_component",
    "check_program",
    "eliminate_dead_code",
    "fold_component",
    "fold_constants",
    "inline_aliases",
    "optimize_component",
    "classify_signals",
    "dependency_graph",
    "flatten_program",
    "free_vars",
    "instantaneous_cycles",
    "normalize_component",
    "shared_signals",
]
