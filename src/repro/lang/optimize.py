"""Optimization passes over Signal components.

Classical rewrites, restricted to *clock-preserving* transformations —
in a polychronous language an algebraic identity is only valid when it
keeps the expression's clock, so e.g. ``x * 0 -> 0`` is **not** performed
(the left side ticks with ``x``, the right side is context-clocked).

- :func:`fold_constants` / :func:`fold_component` — constant folding and
  boolean identities;
- :func:`inline_aliases` — copy propagation for ``x := y`` equations on
  local signals;
- :func:`eliminate_dead_code` — drop local equations no output
  (transitively) depends on;
- :func:`optimize_component` — the standard pipeline (fold, inline,
  eliminate, iterate to fixpoint).
"""

from __future__ import annotations

from typing import Set

from repro.lang.ast import (
    App,
    ClockOf,
    Component,
    Const,
    Default,
    Equation,
    Expr,
    Pre,
    SyncConstraint,
    Var,
    When,
)
from repro.lang.types import BUILTIN_FUNCTIONS


def fold_constants(expr: Expr) -> Expr:
    """Bottom-up constant folding, clock-preserving rewrites only."""
    expr = expr.map_children(fold_constants)
    if isinstance(expr, App):
        args = expr.args
        if all(isinstance(a, Const) for a in args):
            spec = BUILTIN_FUNCTIONS[expr.op]
            try:
                return Const(spec.fn(*[a.value for a in args]))
            except (ZeroDivisionError, TypeError):
                return expr
        if expr.op == "not":
            inner = args[0]
            if isinstance(inner, App) and inner.op == "not":
                return inner.args[0]  # not not e -> e
        if expr.op == "and" and len(args) == 2:
            # e and true -> e (the constant adapts to e's clock)
            if isinstance(args[0], Const) and args[0].value is True:
                return args[1]
            if isinstance(args[1], Const) and args[1].value is True:
                return args[0]
        if expr.op == "or" and len(args) == 2:
            if isinstance(args[0], Const) and args[0].value is False:
                return args[1]
            if isinstance(args[1], Const) and args[1].value is False:
                return args[0]
        return expr
    if isinstance(expr, When):
        # e when true -> e (constant condition adapts to e's clock)
        if isinstance(expr.cond, Const) and expr.cond.value is True:
            return expr.expr
        return expr
    if isinstance(expr, Default):
        # a constant left branch is available at any clock: it shadows the
        # right entirely
        if isinstance(expr.left, Const):
            return expr.left
        return expr
    return expr


def fold_component(comp: Component) -> Component:
    statements = [
        Equation(st.target, fold_constants(st.expr))
        if isinstance(st, Equation)
        else st
        for st in comp.statements
    ]
    return comp.with_statements(statements)


def inline_aliases(comp: Component) -> Component:
    """Copy propagation: replace local ``x := y`` by ``y`` everywhere.

    Only *local* aliases are removed (outputs keep their equations: they
    are the component's interface).  Sync constraints mentioning the alias
    are rewritten to the aliased signal.
    """
    aliases = {}
    for eq in comp.equations():
        if eq.target in comp.locals and isinstance(eq.expr, Var):
            aliases[eq.target] = eq.expr.name
    if not aliases:
        return comp

    def resolve(name: str) -> str:
        seen = set()
        while name in aliases and name not in seen:
            seen.add(name)
            name = aliases[name]
        return name

    mapping = {a: resolve(a) for a in aliases}
    statements = []
    for st in comp.statements:
        if isinstance(st, Equation):
            if st.target in mapping:
                continue  # the alias definition disappears
            statements.append(Equation(st.target, st.expr.rename(mapping)))
        else:
            renamed = st.rename(mapping)
            # drop constraints made trivial (x ^= x)
            if len(set(renamed.names)) > 1:
                statements.append(renamed)
    locals_ = {n: t for n, t in comp.locals.items() if n not in mapping}
    return Component(comp.name, comp.inputs, comp.outputs, locals_, statements)


def eliminate_dead_code(comp: Component) -> Component:
    """Remove local equations nothing observable depends on.

    Observable roots: every output equation and every sync constraint
    (constraints shape the clocks of the signals they mention, so their
    operands stay live).
    """
    live: Set[str] = set(comp.outputs)
    for st in comp.statements:
        if isinstance(st, SyncConstraint):
            live |= set(st.names)
    defs = {eq.target: eq for eq in comp.equations()}
    frontier = list(live)
    while frontier:
        name = frontier.pop()
        eq = defs.get(name)
        if eq is None:
            continue
        for used in eq.expr.free_vars():
            if used not in live:
                live.add(used)
                frontier.append(used)
    statements = []
    for st in comp.statements:
        if isinstance(st, Equation) and st.target not in live:
            continue
        statements.append(st)
    locals_ = {n: t for n, t in comp.locals.items() if n in live}
    return Component(comp.name, comp.inputs, comp.outputs, locals_, statements)


def optimize_component(comp: Component, max_passes: int = 8) -> Component:
    """Fold + inline + eliminate, iterated to a fixpoint."""
    for _ in range(max_passes):
        before = list(comp.statements)
        comp = eliminate_dead_code(inline_aliases(fold_component(comp)))
        if list(comp.statements) == before:
            break
    return comp
