"""Pretty printer for the Signal dialect.

``parse(format(ast)) == ast`` is the contract (tested property); the
printed text also matches the paper's concrete notation closely enough to
paste into the examples.
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    ClockOf,
    Component,
    Const,
    Default,
    Equation,
    Expr,
    Pre,
    Program,
    Statement,
    SyncConstraint,
    Var,
    When,
)

# Precedence ladder; larger binds tighter.  Mirrors the parser.
_PREC_DEFAULT = 1
_PREC_WHEN = 2
_PREC_OR = 3
_PREC_AND = 4
_PREC_NOT = 5
_PREC_CMP = 6
_PREC_SUM = 7
_PREC_PROD = 8
_PREC_UNARY = 9
_PREC_ATOM = 10

_BINOP_PREC = {
    "or": _PREC_OR,
    "xor": _PREC_OR,
    "and": _PREC_AND,
    "==": _PREC_CMP,
    "/=": _PREC_CMP,
    "<": _PREC_CMP,
    "<=": _PREC_CMP,
    ">": _PREC_CMP,
    ">=": _PREC_CMP,
    "+": _PREC_SUM,
    "-": _PREC_SUM,
    "*": _PREC_PROD,
    "/": _PREC_PROD,
    "mod": _PREC_PROD,
}


def _literal(value) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)


def _fmt(expr: Expr, parent_prec: int) -> str:
    text, prec = _fmt_prec(expr)
    if prec < parent_prec:
        return "(" + text + ")"
    return text


def _fmt_prec(expr: Expr):
    if isinstance(expr, Var):
        return expr.name, _PREC_ATOM
    if isinstance(expr, Const):
        return _literal(expr.value), _PREC_ATOM
    if isinstance(expr, Default):
        # left-nested chains print flat; right operand parenthesized one
        # level tighter to re-associate identically on reparse.
        left = _fmt(expr.left, _PREC_DEFAULT)
        right = _fmt(expr.right, _PREC_DEFAULT + 1)
        return "{} default {}".format(left, right), _PREC_DEFAULT
    if isinstance(expr, When):
        left = _fmt(expr.expr, _PREC_WHEN)
        right = _fmt(expr.cond, _PREC_WHEN + 1)
        return "{} when {}".format(left, right), _PREC_WHEN
    if isinstance(expr, Pre):
        if expr.init is None:
            return "pre {}".format(_fmt(expr.expr, _PREC_UNARY)), _PREC_UNARY
        return (
            "pre {} {}".format(_literal(expr.init), _fmt(expr.expr, _PREC_UNARY)),
            _PREC_UNARY,
        )
    if isinstance(expr, ClockOf):
        return "^{}".format(_fmt(expr.expr, _PREC_UNARY)), _PREC_UNARY
    if isinstance(expr, App):
        op = expr.op
        if op == "not":
            return "not {}".format(_fmt(expr.args[0], _PREC_NOT)), _PREC_NOT
        if op == "neg":
            return "-{}".format(_fmt(expr.args[0], _PREC_UNARY)), _PREC_UNARY
        if op in _BINOP_PREC and len(expr.args) == 2:
            prec = _BINOP_PREC[op]
            left = _fmt(expr.args[0], prec)
            # comparisons do not chain in the grammar: parenthesize both
            # sides one level tighter so the reparse matches.
            right_prec = prec + 1
            if op in ("==", "/=", "<", "<=", ">", ">="):
                left = _fmt(expr.args[0], prec + 1)
            right = _fmt(expr.args[1], right_prec)
            return "{} {} {}".format(left, op, right), prec
        # generic function-call form (min, max, ...)
        args = ", ".join(_fmt(a, _PREC_DEFAULT) for a in expr.args)
        return "{}({})".format(op, args), _PREC_ATOM
    raise TypeError("cannot format {!r}".format(expr))


def format_expression(expr: Expr) -> str:
    """Render an expression in the concrete syntax."""
    return _fmt(expr, _PREC_DEFAULT)


def format_statement(st: Statement) -> str:
    if isinstance(st, Equation):
        return "{} := {}".format(st.target, format_expression(st.expr))
    if isinstance(st, SyncConstraint):
        return " ^= ".join(st.names)
    raise TypeError("cannot format {!r}".format(st))


def format_component(comp: Component, indent: str = "  ") -> str:
    """Render a component as a ``process ... end`` block."""
    lines = ["process {} =".format(comp.name), indent + "("]
    for name, ty in comp.inputs.items():
        lines.append("{}  ? {} {};".format(indent, ty.name, name))
    for name, ty in comp.outputs.items():
        lines.append("{}  ! {} {};".format(indent, ty.name, name))
    lines.append(indent + ")")
    body = comp.statements
    for i, st in enumerate(body):
        lead = "(| " if i == 0 else " | "
        lines.append(indent + lead + format_statement(st))
    lines.append(indent + " |)")
    if comp.locals:
        lines.append("where")
        for name, ty in comp.locals.items():
            lines.append("{}{} {};".format(indent, ty.name, name))
    lines.append("end")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render every component of a program."""
    return "\n\n".join(format_component(c) for c in program.components)
