"""Value types and builtin functions of the Signal dialect.

Three value types cover the paper's examples (booleans and integers as
event values, Section 3) plus the conventional ``event`` type of Signal —
a signal that carries only the value ``True`` when present, used for pure
clocks such as ``tick`` or ``alarm``.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Optional, Tuple


class Type:
    """A Signal value type (nominal, compared by identity)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name

    def __reduce__(self):
        # identity comparison must survive pickling (components cross
        # process boundaries for parallel state-space exploration)
        return (_canonical_type, (self.name,))


def _canonical_type(name: str) -> "Type":
    return TYPES_BY_NAME.get(name) or Type(name)


EVENT = Type("event")
BOOL = Type("boolean")
INT = Type("integer")

TYPES_BY_NAME: Dict[str, Type] = {t.name: t for t in (EVENT, BOOL, INT)}


def type_of_value(value: object) -> Type:
    """The type of a constant value appearing in an expression."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    raise TypeError("unsupported constant value: {!r}".format(value))


def _safe_div(a: int, b: int) -> int:
    """Integer division that mirrors hardware truncation toward zero."""
    if b == 0:
        raise ZeroDivisionError("division by zero in signal function")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _safe_mod(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("modulo by zero in signal function")
    return a - _safe_div(a, b) * b


class FunctionSpec:
    """Signature and evaluator of a builtin pointwise function.

    ``arg_types`` of ``None`` means "all operands of one common type"
    (polymorphic equality); otherwise a tuple of expected operand types.
    """

    __slots__ = ("name", "arity", "arg_types", "result_type", "fn")

    def __init__(
        self,
        name: str,
        arity: int,
        arg_types: Optional[Tuple[Type, ...]],
        result_type: Type,
        fn: Callable,
    ):
        self.name = name
        self.arity = arity
        self.arg_types = arg_types
        self.result_type = result_type
        self.fn = fn

    def __repr__(self) -> str:
        return "FunctionSpec({!r}/{})".format(self.name, self.arity)


BUILTIN_FUNCTIONS: Dict[str, FunctionSpec] = {}


def _register(name, arity, arg_types, result_type, fn):
    BUILTIN_FUNCTIONS[name] = FunctionSpec(name, arity, arg_types, result_type, fn)


_register("not", 1, (BOOL,), BOOL, operator.not_)
_register("and", 2, (BOOL, BOOL), BOOL, lambda a, b: a and b)
_register("or", 2, (BOOL, BOOL), BOOL, lambda a, b: a or b)
_register("xor", 2, (BOOL, BOOL), BOOL, lambda a, b: bool(a) != bool(b))

_register("+", 2, (INT, INT), INT, operator.add)
_register("-", 2, (INT, INT), INT, operator.sub)
_register("*", 2, (INT, INT), INT, operator.mul)
_register("/", 2, (INT, INT), INT, _safe_div)
_register("mod", 2, (INT, INT), INT, _safe_mod)
_register("neg", 1, (INT,), INT, operator.neg)
_register("min", 2, (INT, INT), INT, min)
_register("max", 2, (INT, INT), INT, max)

_register("==", 2, None, BOOL, operator.eq)
_register("/=", 2, None, BOOL, operator.ne)
_register("<", 2, (INT, INT), BOOL, operator.lt)
_register("<=", 2, (INT, INT), BOOL, operator.le)
_register(">", 2, (INT, INT), BOOL, operator.gt)
_register(">=", 2, (INT, INT), BOOL, operator.ge)
