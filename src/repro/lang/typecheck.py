"""Static type checking for Signal components and programs.

Rules
-----

- Every equation target must be an output or local (inputs come from the
  environment) and must be defined exactly once (single assignment).
- Every output and local must be defined.
- Value types: ``event`` is the subtype of ``boolean`` carrying only
  ``true``; an event expression can be used wherever a boolean is needed.
  An ``event`` signal may only be defined by an expression of event type
  (``^e``, ``e when c`` with ``e`` of event type, ``true when c``,
  ``default`` of events).
- Programs additionally require that a shared signal is produced by at
  most one component and declared with one type everywhere.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import SignalTypeError
from repro.lang.ast import (
    App,
    ClockOf,
    Component,
    Const,
    Default,
    Equation,
    Expr,
    Pre,
    Program,
    SyncConstraint,
    Var,
    When,
)
from repro.lang.types import BOOL, BUILTIN_FUNCTIONS, EVENT, INT, Type, type_of_value


def _compatible(expected: Type, actual: Type) -> bool:
    """May a value of ``actual`` type flow where ``expected`` is required?"""
    if expected is actual:
        return True
    if expected is BOOL and actual is EVENT:
        return True
    return False


def _join(a: Type, b: Type, context: str) -> Type:
    """Least common type of two branches (for ``default``)."""
    if a is b:
        return a
    if {a, b} == {BOOL, EVENT}:
        return BOOL
    raise SignalTypeError(
        "incompatible branch types {} and {} in {}".format(a, b, context)
    )


def infer_type(expr: Expr, env: Mapping[str, Type]) -> Type:
    """Infer the value type of ``expr`` under signal typing ``env``."""
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise SignalTypeError("undeclared signal {!r}".format(expr.name))
    if isinstance(expr, Const):
        return type_of_value(expr.value)
    if isinstance(expr, Pre):
        inner = infer_type(expr.expr, env)
        if inner is EVENT:
            inner = BOOL  # the memorized value of an event is a boolean
        if expr.init is None:
            raise SignalTypeError(
                "uninitialized pre (no initial value): {!r}".format(expr)
            )
        init_ty = type_of_value(expr.init)
        if not _compatible(inner, init_ty):
            raise SignalTypeError(
                "pre initial value {!r} does not match operand type {}".format(
                    expr.init, inner
                )
            )
        return inner
    if isinstance(expr, When):
        cond_ty = infer_type(expr.cond, env)
        if not _compatible(BOOL, cond_ty):
            raise SignalTypeError(
                "when-condition must be boolean, found {}".format(cond_ty)
            )
        base = infer_type(expr.expr, env)
        # `true when c` is the canonical event constructor of the paper.
        if isinstance(expr.expr, Const) and expr.expr.value is True:
            return EVENT
        return base
    if isinstance(expr, Default):
        left = infer_type(expr.left, env)
        right = infer_type(expr.right, env)
        return _join(left, right, "default")
    if isinstance(expr, ClockOf):
        infer_type(expr.expr, env)  # operand must be well-typed
        return EVENT
    if isinstance(expr, App):
        spec = BUILTIN_FUNCTIONS.get(expr.op)
        if spec is None:
            raise SignalTypeError("unknown function {!r}".format(expr.op))
        if len(expr.args) != spec.arity:
            raise SignalTypeError(
                "{} expects {} operands, got {}".format(
                    expr.op, spec.arity, len(expr.args)
                )
            )
        arg_types = [infer_type(a, env) for a in expr.args]
        if spec.arg_types is None:
            # polymorphic (equality): operands of one common type
            try:
                _join(arg_types[0], arg_types[1], expr.op)
            except SignalTypeError:
                raise SignalTypeError(
                    "operands of {} must have one type, found {} and {}".format(
                        expr.op, arg_types[0], arg_types[1]
                    )
                )
        else:
            for i, (need, got) in enumerate(zip(spec.arg_types, arg_types)):
                if not _compatible(need, got):
                    raise SignalTypeError(
                        "operand {} of {} must be {}, found {}".format(
                            i + 1, expr.op, need, got
                        )
                    )
        return spec.result_type
    raise SignalTypeError("cannot type {!r}".format(expr))


def check_component(comp: Component) -> None:
    """Raise :class:`SignalTypeError` unless ``comp`` is well-formed."""
    env: Dict[str, Type] = comp.signals()
    defined = set()
    for st in comp.statements:
        if isinstance(st, SyncConstraint):
            continue
        assert isinstance(st, Equation)
        if st.target in comp.inputs:
            raise SignalTypeError(
                "{}: input {!r} cannot be defined".format(comp.name, st.target)
            )
        if st.target in defined:
            raise SignalTypeError(
                "{}: signal {!r} defined more than once".format(comp.name, st.target)
            )
        defined.add(st.target)
        actual = infer_type(st.expr, env)
        expected = env[st.target]
        if expected is EVENT:
            if actual is not EVENT:
                raise SignalTypeError(
                    "{}: event signal {!r} defined by a {} expression".format(
                        comp.name, st.target, actual
                    )
                )
        elif not _compatible(expected, actual):
            raise SignalTypeError(
                "{}: {!r} declared {} but defined as {}".format(
                    comp.name, st.target, expected, actual
                )
            )
    missing = (set(comp.outputs) | set(comp.locals)) - defined
    if missing:
        raise SignalTypeError(
            "{}: undefined signals {}".format(comp.name, sorted(missing))
        )


def check_program(program: Program) -> None:
    """Component checks plus inter-component consistency."""
    producers: Dict[str, str] = {}
    types: Dict[str, Type] = {}
    for comp in program.components:
        check_component(comp)
        for name, ty in comp.signals().items():
            if name in comp.locals:
                continue  # locals are private; collisions handled at flatten
            if name in types and types[name] is not ty:
                raise SignalTypeError(
                    "signal {!r} declared {} and {} in different components".format(
                        name, types[name], ty
                    )
                )
            types[name] = ty
        for name in comp.defined_names():
            if name in comp.locals:
                continue
            if name in producers:
                raise SignalTypeError(
                    "signal {!r} produced by both {!r} and {!r}".format(
                        name, producers[name], comp.name
                    )
                )
            producers[name] = comp.name
