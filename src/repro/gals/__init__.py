"""GALS deployment: asynchronous execution of synchronous components.

The end goal of the paper is to "deploy [the design] on an asynchronous
network preserving all properties of the system proven in the synchronous
framework".  This package is that asynchronous network:

- :mod:`repro.gals.network` — an event-driven simulator where each
  component runs its own reactor on a private activation schedule and
  communicates through FIFO channels (unbounded, lossy-bounded, or
  blocking-bounded — the paper's clock-masking backpressure);
- :mod:`repro.gals.schedules` — activation schedules (periodic with
  jitter, Poisson-like, bursty);
- :mod:`repro.gals.adapters` — copy/fork and merge/join Signal components
  for multi-producer/multi-consumer channels (Section 4.2's closing
  remark);
- :mod:`repro.gals.service` — occupancy-driven service-level switching
  (Section 5.2's "different service levels ... tuned" remark).

Network traces carry real-valued tags, so the flow-equivalence machinery
of :mod:`repro.tags` compares a GALS run directly against the synchronous
reference — that comparison is experiment F3.
"""

from repro.gals.network import (
    AsyncChannel,
    AsyncNetwork,
    NetworkTrace,
    Node,
)
from repro.gals import schedules
from repro.gals.adapters import fork_component, merge_component
from repro.gals.service import RateController, ServiceLevel

__all__ = [
    "AsyncChannel",
    "AsyncNetwork",
    "NetworkTrace",
    "Node",
    "schedules",
    "fork_component",
    "merge_component",
    "RateController",
    "ServiceLevel",
]
