"""Copy/fork and merge/join adapters (Section 4.2, closing remark).

    "For multiple-producer, multiple-consumer shared variables, one can
     make use of standard copy (fork) and merge (join) components to copy
     the shared channel for several components and join several write
     attempts of different components into one channel."

Both adapters are ordinary Signal components, so they desynchronize like
any other component — a forked channel becomes several FIFO channels, a
merged one serializes its producers.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.lang.ast import Component
from repro.lang.builder import ComponentBuilder
from repro.lang.types import INT, Type


def fork_component(
    inp: str,
    outs: Sequence[str],
    name: str = "Fork",
    dtype: Type = INT,
) -> Component:
    """Copy every arrival of ``inp`` onto each signal of ``outs``."""
    if not outs:
        raise ValueError("fork needs at least one output")
    b = ComponentBuilder(name)
    inp_v = b.input(inp, dtype)
    for out in outs:
        out_v = b.output(out, dtype)
        b.define(out_v, inp_v)
    return b.build()


def merge_component(
    inps: Sequence[str],
    out: str,
    name: str = "Merge",
    dtype: Type = INT,
) -> Component:
    """Join several producers onto one signal, earlier inputs first.

    The merge is the priority ``default``: when two producers write at the
    same instant, the one listed first wins the slot (the other's value is
    superseded that instant — serialize producers upstream when that
    matters).
    """
    if len(inps) < 2:
        raise ValueError("merge needs at least two inputs")
    b = ComponentBuilder(name)
    vars_ = [b.input(i, dtype) for i in inps]
    out_v = b.output(out, dtype)
    expr = vars_[0]
    for v in vars_[1:]:
        expr = expr.default(v)
    b.define(out_v, expr)
    return b.build()
