"""Event-driven GALS network simulation.

Each node wraps one synchronous component in its own
:class:`~repro.sim.engine.Reactor` and fires on a private activation
schedule.  Shared signals of the source program become asynchronous FIFO
channels; at each firing a node pops at most one pending item per input
channel (those inputs are *present* for that reaction) and pushes every
produced output.

Channel policies:

- ``"unbounded"`` — the ideal ``AFifo`` of Definition 8 (reference model);
- ``"lossy"`` — bounded; a push onto a full channel is dropped and counted
  (the ``alarm`` of Section 5.1);
- ``"block"`` — bounded; a node does not fire while any of its outgoing
  channels is full (the paper's "masking the clock of the producer").

The recorded :class:`NetworkTrace` tags every event with the real
activation time, so write events of ``x`` appear as ``x__w`` and read
events as ``x__r`` — directly comparable (via
:mod:`repro.tags.equivalence`) with the synchronous reference and with the
desynchronized multi-clock program.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import SimulationError
from repro.lang.analysis import shared_signals
from repro.lang.ast import Component, Program
from repro.sim.engine import Reactor
from repro.sim.plan import shared_plan
from repro.tags.behavior import Behavior
from repro.tags.trace import SignalTrace


class AsyncChannel:
    """A FIFO link between two nodes.

    ``latency`` models transport delay: an item pushed at time ``t``
    becomes visible to the consumer at ``t + latency`` (it counts against
    the capacity while in flight).

    An optional ``injector`` (see :mod:`repro.faults.inject`) takes over
    :meth:`push` to weave deterministic faults — drops, duplicates,
    reordering, per-item latency jitter, value corruption — into the
    queue; the plain path is untouched when no injector is attached.
    """

    #: Retained loss-timestamp samples per channel.  The *count* of losses
    #: is always exact; only the sample of timestamps is bounded so that
    #: long lossy soaks keep O(1) state per channel.
    LOSS_SAMPLES = 64

    def __init__(
        self,
        name: str,
        capacity: Optional[int] = None,
        policy: str = "unbounded",
        latency: float = 0.0,
    ):
        if policy not in ("unbounded", "lossy", "block"):
            raise ValueError("unknown channel policy {!r}".format(policy))
        if policy != "unbounded" and (capacity is None or capacity < 1):
            raise ValueError("bounded channel needs capacity >= 1")
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.name = name
        self.capacity = capacity if policy != "unbounded" else None
        self.policy = policy
        self.latency = latency
        self.items: deque = deque()  # (visible_at, value, pushed_at, skippable)
        self.losses = 0
        self.loss_times: List[float] = []
        self._loss_rng = None  # lazily seeded reservoir sampler
        self.peak = 0
        self.total_wait = 0.0
        self.delivered = 0
        self.injector = None  # repro.faults.inject.ChannelInjector, if woven

    def full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def record_loss(self, time: float) -> None:
        """Count a dropped item, keeping a bounded reservoir of timestamps."""
        self.losses += 1
        if len(self.loss_times) < self.LOSS_SAMPLES:
            self.loss_times.append(time)
            return
        # Algorithm R, deterministically seeded per channel so traces stay
        # byte-identical run to run.
        if self._loss_rng is None:
            import random
            import zlib

            self._loss_rng = random.Random(zlib.crc32(self.name.encode()))
        slot = self._loss_rng.randrange(self.losses)
        if slot < self.LOSS_SAMPLES:
            self.loss_times[slot] = time

    def enqueue(
        self,
        value,
        time: float,
        latency: Optional[float] = None,
        position: Optional[int] = None,
        soft: bool = False,
    ) -> bool:
        """Place one item, honouring capacity/policy.

        ``latency`` overrides the channel latency (fault jitter);
        ``position`` inserts that many places before the tail (fault
        reordering); ``soft`` turns the blocking-policy overflow into a
        counted drop (a fault-injected extra item must not crash a
        masked producer).
        """
        if self.full():
            if self.policy == "lossy" or soft:
                self.record_loss(time)
                return False
            raise SimulationError(
                "push on full blocking channel {!r} (the scheduler must "
                "mask the producer)".format(self.name)
            )
        visible = time + (self.latency if latency is None else latency)
        if position:
            # A reorder-injected entry is "skippable": while still in
            # flight it must not hide items that already arrived behind it
            # (they were pushed earlier and overtaken, not delayed).
            self.items.insert(
                max(0, len(self.items) - position), (visible, value, time, True)
            )
        else:
            self.items.append((visible, value, time, False))
        self.peak = max(self.peak, len(self.items))
        return True

    def push(self, value, time: float) -> bool:
        """Returns False when the item was dropped (lossy overflow)."""
        if self.injector is not None:
            return self.injector.push(self, value, time)
        return self.enqueue(value, time)

    def available(self, time: float) -> bool:
        """Has any deliverable item arrived by ``time``?

        FIFO order is preserved: an item that has not arrived blocks
        everything behind it — *except* reorder-injected entries, which
        jumped the queue and may be skipped over while still in flight
        (otherwise an in-flight overtaker would hide an item that
        already arrived).
        """
        for visible_at, _, _, skippable in self.items:
            if visible_at <= time:
                return True
            if not skippable:
                return False
        return False

    def pop(self, time: Optional[float] = None):
        if time is None:
            entry = self.items.popleft()
        else:
            entry = None
            for i, cand in enumerate(self.items):
                if cand[0] <= time:
                    entry = cand
                    del self.items[i]
                    break
                if not cand[3]:
                    break
            if entry is None:
                entry = self.items.popleft()
        visible_at, value, pushed_at = entry[0], entry[1], entry[2]
        delivered_at = visible_at if time is None else max(time, visible_at)
        self.total_wait += max(0.0, delivered_at - pushed_at)
        self.delivered += 1
        return value

    def protocol_stats(self) -> Dict[str, int]:
        """Extra per-channel counters (protocol wrappers override)."""
        return {}

    def mean_latency(self) -> float:
        """Average push-to-pop delay of delivered items."""
        return self.total_wait / self.delivered if self.delivered else 0.0

    def __len__(self) -> int:
        return len(self.items)


class Node(NamedTuple):
    """One locally synchronous island."""

    name: str
    component: Component
    schedule: Iterator[float]
    activation: str = ""  # event input ticked at every firing, if any


class _Recorder:
    """Event recorder with ``(time, seq)`` tie-breaking.

    Many events can share one activation timestamp (bursts of data-driven
    firings); traces need strictly increasing tags.  Each event therefore
    carries its global sequence rank *within its raw timestamp*, and
    :meth:`behavior` spreads rank ``k`` at raw time ``t`` to
    ``t + k * eps(t)`` with ``eps(t)`` bounded by the gap to the next
    distinct recorded timestamp (and by 1e-9) — so no burst, however
    long, can accumulate nudges past the next real event, and causal
    record order at one instant is preserved across signals.
    """

    def __init__(self):
        self.events: Dict[str, List[Tuple[float, int, object]]] = {}
        self._at: Dict[float, int] = {}  # raw time -> events recorded at it

    def record(self, signal: str, time: float, value) -> None:
        rank = self._at.get(time, 0)
        self._at[time] = rank + 1
        self.events.setdefault(signal, []).append((time, rank, value))

    def behavior(self, names: Optional[Iterable[str]] = None) -> Behavior:
        names = list(names) if names is not None else sorted(self.events)
        times = sorted(self._at)
        eps: Dict[float, float] = {}
        for i, t in enumerate(times):
            if self._at[t] <= 1:
                eps[t] = 0.0
                continue
            gap = times[i + 1] - t if i + 1 < len(times) else float("inf")
            eps[t] = min(1e-9, gap / (self._at[t] + 1))
        out = {}
        for name in names:
            evs = self.events.get(name, [])
            out[name] = SignalTrace([(t + k * eps[t], v) for t, k, v in evs])
        return Behavior(out)


class NetworkTrace(NamedTuple):
    """Result of an asynchronous run."""

    behavior: Behavior                    # all recorded signals, real tags
    firings: Dict[str, int]               # reactions per node
    skipped: Dict[str, int]               # firings masked by backpressure
    channels: Dict[str, Dict[str, object]]  # per-channel stats
    stalled: Dict[str, int] = {}          # firings suppressed by fault stalls
    crashes: Dict[str, int] = {}          # state-losing crashes per node
    alarms: Tuple = ()                    # supervisor AlarmEvents, in order

    def values(self, signal: str) -> Tuple:
        return self.behavior[signal].values() if signal in self.behavior else ()

    def fault_counts(self) -> Dict[str, int]:
        """Injected-fault totals summed over every channel."""
        totals: Dict[str, int] = {}
        for stats in self.channels.values():
            for key, n in (stats.get("faults") or {}).items():
                totals[key] = totals.get(key, 0) + n
        for n in self.stalled.values():
            totals["stalls"] = totals.get("stalls", 0) + n
        for n in self.crashes.values():
            totals["crashes"] = totals.get("crashes", 0) + n
        return totals


class AsyncNetwork:
    """A set of nodes plus channels derived from their shared signals."""

    def __init__(
        self,
        nodes: List[Node],
        capacities: Optional[Mapping[str, int]] = None,
        policy: str = "unbounded",
        default_capacity: int = 1,
        latencies: Optional[Mapping[str, float]] = None,
    ):
        self.nodes = list(nodes)
        self._reactors: Dict[str, Reactor] = {}
        self._schedules: Dict[str, Iterator[float]] = {}
        producers: Dict[str, str] = {}
        consumers: Dict[str, List[str]] = {}
        for node in self.nodes:
            # soaks build one fresh network per scenario from the *same*
            # node components; the shared plan cache (keyed by component
            # content) makes the per-network reactor builds near-free and
            # picks the specialized fast path unless REPRO_NO_SPECIALIZE
            self._reactors[node.name] = Reactor(
                node.component, plan=shared_plan(node.component)
            )
            self._schedules[node.name] = node.schedule
            iface = set(node.component.inputs) | set(node.component.outputs)
            defined = node.component.defined_names()
            for sig in iface:
                if sig in defined:
                    producers[sig] = node.name
                elif sig in node.component.inputs and sig != node.activation:
                    consumers.setdefault(sig, []).append(node.name)
        # channels: producer -> each consumer
        self.channels: Dict[Tuple[str, str], AsyncChannel] = {}
        self._out_links: Dict[str, List[Tuple[str, AsyncChannel]]] = {
            n.name: [] for n in self.nodes
        }
        self._in_links: Dict[str, List[Tuple[str, AsyncChannel]]] = {
            n.name: [] for n in self.nodes
        }
        capacities = dict(capacities or {})
        latencies = dict(latencies or {})
        for sig, cons in sorted(consumers.items()):
            prod = producers.get(sig)
            if prod is None:
                continue  # environment-driven input: not supported yet
            for consumer in cons:
                cap = capacities.get(sig, default_capacity)
                ch = AsyncChannel(
                    "{}->{}:{}".format(prod, consumer, sig),
                    capacity=cap,
                    policy=policy,
                    latency=latencies.get(sig, 0.0),
                )
                self.channels[(sig, consumer)] = ch
                self._out_links[prod].append((sig, ch))
                self._in_links[consumer].append((sig, ch))

    @classmethod
    def from_program(
        cls,
        program: Program,
        schedules: Mapping[str, Iterator[float]],
        activations: Optional[Mapping[str, str]] = None,
        **kwargs,
    ) -> "AsyncNetwork":
        """Deploy each component of ``program`` as one node.

        ``schedules`` maps component names to activation schedules;
        components without a schedule are *data-driven*: they fire whenever
        any of their input channels holds data (polled at every event
        time).  ``activations`` names each node's activation event input
        (defaults: an input named like the schedule's conventional
        ``<name>_act``, or the unique event input if there is exactly one).
        """
        activations = dict(activations or {})
        nodes = []
        for comp in program.components:
            act = activations.get(comp.name, "")
            if not act:
                from repro.lang.types import EVENT

                events = [n for n, ty in comp.inputs.items() if ty is EVENT]
                if len(events) == 1:
                    act = events[0]
            sched = schedules.get(comp.name)
            nodes.append(
                Node(
                    comp.name,
                    comp,
                    iter(sched) if sched is not None else iter(()),
                    activation=act,
                )
            )
        net = cls(nodes, **kwargs)
        net._data_driven = {
            comp.name for comp in program.components if comp.name not in schedules
        }
        return net

    _data_driven: frozenset = frozenset()
    _fault_schedule = None  # repro.faults.schedule.FaultSchedule, if woven
    _supervisor = None  # repro.resilience.supervisor.Supervisor, if woven

    # -- execution --------------------------------------------------------------

    def run(self, horizon: float, max_events: int = 100000) -> NetworkTrace:
        """Simulate until ``horizon`` (exclusive)."""
        recorder = _Recorder()
        firings = {n.name: 0 for n in self.nodes}
        skipped = {n.name: 0 for n in self.nodes}
        stalled = {n.name: 0 for n in self.nodes}
        self._crashes = {n.name: 0 for n in self.nodes}
        self._last_fired = {}
        faults = self._fault_schedule
        counter = itertools.count()
        heap: List[Tuple[float, int, str]] = []

        def push_next(name: str) -> None:
            try:
                t = next(self._schedules[name])
            except StopIteration:
                return
            if t < horizon:
                heapq.heappush(heap, (t, next(counter), name))

        for node in self.nodes:
            push_next(node.name)

        data_driven = getattr(self, "_data_driven", frozenset())
        events = 0
        while heap:
            events += 1
            if events > max_events:
                raise SimulationError("async run exceeded max_events")
            time, _, name = heapq.heappop(heap)
            push_next(name)
            node = next(n for n in self.nodes if n.name == name)
            # fault injection: a stalled node misses this activation
            if faults is not None and faults.stalled(name, time):
                stalled[name] += 1
                self._fire_data_driven(
                    data_driven, time, recorder, firings, faults, stalled
                )
                continue
            # backpressure: masked while an outgoing channel is full
            if any(ch.full() and ch.policy == "block" for _, ch in self._out_links[name]):
                skipped[name] += 1
                self._fire_data_driven(
                    data_driven, time, recorder, firings, faults, stalled
                )
                continue
            inputs: Dict[str, object] = {}
            if node.activation:
                inputs[node.activation] = True
            for sig, ch in self._in_links[name]:
                if ch.available(time):
                    value = ch.pop(time)
                    inputs[sig] = value
                    recorder.record(sig + "__r", time, value)
            outputs = self._react(name, inputs, time)
            firings[name] += 1
            self._dispatch(name, outputs, time, recorder)
            # data-driven nodes drain channels right after each event
            self._fire_data_driven(
                data_driven, time, recorder, firings, faults, stalled
            )

        stats = {}
        for ch in self.channels.values():
            entry = {
                "capacity": ch.capacity,
                "peak": ch.peak,
                "losses": ch.losses,
                "pending": len(ch),
                "loss_times": tuple(ch.loss_times),
                "latency": ch.latency,
                "mean_wait": ch.mean_latency(),
            }
            if ch.injector is not None:
                entry["faults"] = ch.injector.counts()
            protocol = ch.protocol_stats()
            if protocol:
                entry["protocol"] = protocol
            stats[ch.name] = entry
        alarms = (
            tuple(self._supervisor.alarms) if self._supervisor is not None else ()
        )
        return NetworkTrace(
            recorder.behavior(), firings, skipped, stats, stalled,
            dict(self._crashes), alarms,
        )

    def _react(self, name: str, inputs: Dict[str, object], time: float):
        """One supervised reaction: crash wipes, watchdog recovery, logging.

        A crash window that ended since the node's last firing destroys
        its volatile state (the fault); the supervisor — if one is woven —
        detects the silence via its watchdog and restores the last
        checkpoint, replaying the logged inputs (the recovery).
        """
        reactor = self._reactors[name]
        faults = self._fault_schedule
        if faults is not None and faults.crash_ended(
            name, self._last_fired.get(name), time
        ):
            reactor.reset()
            self._crashes[name] += 1
        sup = self._supervisor
        if sup is not None:
            sup.before_fire(name, reactor, time)
        outputs = reactor.react(inputs)
        if sup is not None:
            sup.after_fire(name, reactor, time, inputs)
        self._last_fired[name] = time
        return outputs

    def _dispatch(self, name: str, outputs: Dict[str, object], time: float,
                  recorder: _Recorder) -> None:
        links = dict_groupby(self._out_links[name])
        for sig, value in outputs.items():
            if sig in links:
                recorder.record(sig + "__w", time, value)
                for ch in links[sig]:
                    ch.push(value, time)
            else:
                recorder.record(sig, time, value)

    def _fire_data_driven(
        self, data_driven, time, recorder, firings, faults=None, stalled=None
    ) -> None:
        """Fire data-driven nodes (no schedule) while they have input."""
        progress = True
        guard = 0
        while progress:
            progress = False
            guard += 1
            if guard > 10000:
                raise SimulationError("data-driven firing did not quiesce")
            for node in self.nodes:
                if node.name not in data_driven:
                    continue
                if faults is not None and faults.stalled(node.name, time):
                    if stalled is not None and guard == 1 and any(
                        ch.available(time) for _, ch in self._in_links[node.name]
                    ):
                        stalled[node.name] += 1
                    continue
                pending = [
                    (sig, ch)
                    for sig, ch in self._in_links[node.name]
                    if ch.available(time)
                ]
                if not pending:
                    continue
                inputs: Dict[str, object] = {}
                if node.activation:
                    inputs[node.activation] = True
                for sig, ch in pending:
                    value = ch.pop(time)
                    inputs[sig] = value
                    recorder.record(sig + "__r", time, value)
                outputs = self._react(node.name, inputs, time)
                firings[node.name] += 1
                self._dispatch(node.name, outputs, time, recorder)
                progress = True


def dict_groupby(pairs: Iterable[Tuple[str, AsyncChannel]]) -> Dict[str, List[AsyncChannel]]:
    out: Dict[str, List[AsyncChannel]] = {}
    for sig, ch in pairs:
        out.setdefault(sig, []).append(ch)
    return out
