"""Service-level adaptation (Section 5.2).

    "Masking the clock of the producer may be too naive for some critical
     designs.  In such cases, different service levels should be
     implemented in which the rate of production and consumption of data
     items can be tuned.  The necessity to change the service level can
     then be indicated by observing the status of communication between
     components using the FIFO buffers between them."

:class:`RateController` is that observer: it watches a channel's occupancy
and switches between configured :class:`ServiceLevel`\\ s (each a
production period).  :meth:`RateController.schedule` turns the controller
into a GALS activation schedule whose period adapts while the run
progresses.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, NamedTuple, Optional, Sequence


class ServiceLevel(NamedTuple):
    """One operating point of the producer."""

    name: str
    period: float              # activation period at this level
    enter_above: Optional[int]  # switch here when occupancy >= this
    exit_below: Optional[int]   # leave toward a faster level when < this


class RateController:
    """Occupancy-driven switching between service levels.

    ``levels`` must be ordered fastest (smallest period) first.  The
    controller degrades one level whenever the observed occupancy reaches
    that level's ``enter_above`` bound and recovers one level when the
    occupancy falls under the current level's ``exit_below``.

    Construction validates the hysteresis bounds: within a level,
    ``exit_below`` must not exceed ``enter_above`` (an occupancy that just
    degraded into the level would immediately recover out of it —
    a silent oscillator), ``enter_above`` must be non-decreasing down the
    level list, and bounds must be non-negative.
    """

    def __init__(self, levels: Sequence[ServiceLevel]):
        if not levels:
            raise ValueError("need at least one service level")
        periods = [l.period for l in levels]
        if periods != sorted(periods):
            raise ValueError("levels must be ordered fastest first")
        prev_enter: Optional[int] = None
        for i, lvl in enumerate(levels):
            for bound in (lvl.enter_above, lvl.exit_below):
                if bound is not None and bound < 0:
                    raise ValueError(
                        "service level {!r} has a negative bound".format(lvl.name)
                    )
            if (
                i > 0
                and lvl.enter_above is not None
                and lvl.exit_below is not None
                and lvl.exit_below > lvl.enter_above
            ):
                raise ValueError(
                    "service level {!r} oscillates: exit_below ({}) > "
                    "enter_above ({})".format(
                        lvl.name, lvl.exit_below, lvl.enter_above
                    )
                )
            if lvl.enter_above is not None:
                if prev_enter is not None and lvl.enter_above < prev_enter:
                    raise ValueError(
                        "enter_above bounds must be non-decreasing toward "
                        "slower levels ({!r} has {} after {})".format(
                            lvl.name, lvl.enter_above, prev_enter
                        )
                    )
                prev_enter = lvl.enter_above
        self.levels: List[ServiceLevel] = list(levels)
        self.index = 0
        self.switches: List[tuple] = []  # (time, from, to)

    @property
    def current(self) -> ServiceLevel:
        return self.levels[self.index]

    def observe(self, occupancy: int, time: float = 0.0) -> ServiceLevel:
        """Update the level from a channel occupancy sample."""
        before = self.index
        nxt = self.index + 1
        if (
            nxt < len(self.levels)
            and self.levels[nxt].enter_above is not None
            and occupancy >= self.levels[nxt].enter_above
        ):
            self.index = nxt
        elif (
            self.index > 0
            and self.current.exit_below is not None
            and occupancy < self.current.exit_below
        ):
            self.index -= 1
        if self.index != before:
            self.switches.append(
                (time, self.levels[before].name, self.current.name)
            )
        return self.current

    def schedule(
        self,
        occupancy_of: Callable[[], int],
        phase: float = 0.0,
    ) -> Iterator[float]:
        """An adaptive activation schedule.

        ``occupancy_of`` is sampled before each activation (e.g. a closure
        over an :class:`~repro.gals.network.AsyncChannel`).
        """
        t = phase
        while True:
            self.observe(occupancy_of(), t)
            yield t
            t += self.current.period

    def schedule_for(
        self,
        network,
        signal: str,
        consumer: Optional[str] = None,
        phase: float = 0.0,
        count_losses: bool = True,
    ) -> Iterator[float]:
        """An adaptive schedule bound to one channel of a built network.

        Looks up the :class:`~repro.gals.network.AsyncChannel` carrying
        ``signal`` (to ``consumer``, when the signal fans out) and feeds
        its occupancy to :meth:`observe` before every activation.  With
        ``count_losses`` the observed pressure also includes items lost
        since the previous activation, so a lossy channel under fault
        injection degrades the producer even when drops keep the queue
        short — occupancy alone never sees a dropped item.
        """
        channel = None
        for (sig, cons), ch in network.channels.items():
            if sig == signal and (consumer is None or cons == consumer):
                channel = ch
                break
        if channel is None:
            raise KeyError((signal, consumer))
        seen_losses = {"n": channel.losses}

        def pressure() -> int:
            occupancy = len(channel)
            if count_losses:
                occupancy += channel.losses - seen_losses["n"]
                seen_losses["n"] = channel.losses
            return occupancy

        return self.schedule(pressure, phase=phase)
