"""Activation schedules for GALS nodes.

A schedule is an infinite iterator of strictly increasing activation
times (floats).  Each GALS node runs one reaction per activation.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, Optional, Sequence


def periodic(period: float, phase: float = 0.0, jitter: float = 0.0,
             seed: Optional[int] = None) -> Iterator[float]:
    """Activations every ``period`` time units, optionally jittered.

    ``jitter`` is the half-width of a uniform perturbation, clamped so the
    sequence stays strictly increasing (``jitter < period / 2`` advised).
    """
    if period <= 0:
        raise ValueError("period must be positive")
    rng = random.Random(seed)
    last = float("-inf")
    for k in itertools.count():
        t = phase + k * period
        if jitter:
            t += rng.uniform(-jitter, jitter)
        if t <= last:
            t = last + 1e-9
        last = t
        yield t


def poisson(rate: float, seed: Optional[int] = None, start: float = 0.0) -> Iterator[float]:
    """Memoryless activations with the given average ``rate``."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    t = start
    while True:
        t += rng.expovariate(rate)
        yield t


def bursty(
    burst: int,
    intra: float,
    gap: float,
    phase: float = 0.0,
) -> Iterator[float]:
    """``burst`` activations ``intra`` apart, then a pause of ``gap``."""
    if burst < 1 or intra <= 0 or gap < 0:
        raise ValueError("need burst >= 1, intra > 0, gap >= 0")
    t = phase
    while True:
        for _ in range(burst):
            yield t
            t += intra
        t += gap


def explicit(times: Sequence[float]) -> Iterator[float]:
    """A finite schedule given literally."""
    last = float("-inf")
    for t in times:
        if t <= last:
            raise ValueError("activation times must increase")
        last = t
        yield t
