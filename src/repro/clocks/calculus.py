"""Extraction of clock constraints from Signal equations.

Per core operator (Table 1 clocks):

========================  =======================================
``x := pre v y``          ``^x = ^y``
``x := y when z``         ``^x = ^y * [z]``  (``[z]``: z present & true)
``x := y default z``      ``^x = ^y + ^z``
``x := f(y, ...)``        ``^x = ^y = ...`` (non-constant operands)
``x := ^y``               ``^x = ^y``
``x ^= y``                ``^x = ^y``
========================  =======================================

Nested expressions are handled by normalizing the component to core
(three-address) form first, so each constraint is one operator deep; the
fresh locals introduced by normalization appear in the constraint set and
the analysis, which is faithful — they are real signals of the compiled
component.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.errors import ClockError
from repro.lang.analysis import normalize_component
from repro.lang.ast import (
    App,
    ClockOf,
    Component,
    Const,
    Default,
    Equation,
    Expr,
    Pre,
    SyncConstraint,
    Var,
    When,
)
from repro.clocks.expr import CEmpty, CSample, CVar, ClockExpr, inter, union


class ClockConstraint(NamedTuple):
    """``left = right`` over clock expressions, with provenance."""

    left: ClockExpr
    right: ClockExpr
    origin: str  # human-readable source (equation text-ish)

    def __repr__(self):
        return "{} = {}   % {}".format(self.left, self.right, self.origin)


def _operand_clock(expr: Expr) -> Optional[ClockExpr]:
    """Clock of a core operand (Var or Const); None for constants
    (their clock adapts to the context)."""
    if isinstance(expr, Var):
        return CVar(expr.name)
    if isinstance(expr, Const):
        return None
    raise ClockError(
        "component is not in core form (operand {!r}); "
        "normalize first".format(expr)
    )


def _sample_clock(expr: Expr) -> ClockExpr:
    """The clock contributed by a ``when`` condition operand."""
    if isinstance(expr, Var):
        return CSample(expr.name, True)
    if isinstance(expr, Const):
        # `when true` samples nothing away; `when false` kills the clock.
        return CEmpty if not expr.value else None  # type: ignore[return-value]
    raise ClockError("when-condition {!r} is not core".format(expr))


def extract_constraints(component: Component, normalize: bool = True) -> List[ClockConstraint]:
    """Clock constraints of ``component``.

    ``normalize`` lowers ``^e`` and flattens nested expressions first
    (recommended; pass ``False`` only for components already in core form).
    """
    comp = (
        normalize_component(component, lower_clocks=False, to_core=True)
        if normalize
        else component
    )
    out: List[ClockConstraint] = []
    for st in comp.statements:
        if isinstance(st, SyncConstraint):
            first = CVar(st.names[0])
            for other in st.names[1:]:
                out.append(
                    ClockConstraint(first, CVar(other), "{} ^= {}".format(
                        st.names[0], other))
                )
            continue
        assert isinstance(st, Equation)
        x = CVar(st.target)
        rhs = st.expr
        origin = "{} := ...".format(st.target)
        if isinstance(rhs, (Var, Const)):
            c = _operand_clock(rhs)
            if c is not None:
                out.append(ClockConstraint(x, c, origin))
            continue
        if isinstance(rhs, Pre):
            c = _operand_clock(rhs.expr)
            if c is not None:
                out.append(ClockConstraint(x, c, origin))
            continue
        if isinstance(rhs, ClockOf):
            c = _operand_clock(rhs.expr)
            if c is not None:
                out.append(ClockConstraint(x, c, origin))
            continue
        if isinstance(rhs, When):
            base = _operand_clock(rhs.expr)
            samp = _sample_clock(rhs.cond)
            if samp is None:  # `when true`
                if base is not None:
                    out.append(ClockConstraint(x, base, origin))
                continue
            if base is None:  # constant sampled by z
                out.append(ClockConstraint(x, samp, origin))
            else:
                out.append(ClockConstraint(x, inter(base, samp), origin))
            continue
        if isinstance(rhs, Default):
            left = _operand_clock(rhs.left)
            right = _operand_clock(rhs.right)
            if left is None:
                # constant on the left hides the right entirely; its clock
                # is free (context-driven), no constraint from the right.
                continue
            if right is None:
                # x = y default CONST: clock free above ^y; record only the
                # lower bound as a union with an unconstrained remainder —
                # conservatively skip, matching the simulator's behavior.
                continue
            out.append(ClockConstraint(x, union(left, right), origin))
            continue
        if isinstance(rhs, App):
            clocks = [
                _operand_clock(a)
                for a in rhs.args
            ]
            clocks = [c for c in clocks if c is not None]
            for c in clocks:
                out.append(ClockConstraint(x, c, origin))
            continue
        raise ClockError("cannot extract clock of {!r}".format(rhs))
    return out
