"""Clock calculus for Signal components.

The front-end analysis that the Polychrony toolset performs before code
generation, rebuilt here at the scale the paper's designs need:

- :mod:`repro.clocks.expr` — clock expressions (signal clocks, boolean
  samplings, unions, intersections) with normalization;
- :mod:`repro.clocks.calculus` — extraction of clock constraints from the
  equations (one per core operator);
- :mod:`repro.clocks.hierarchy` — equivalence classes of synchronous
  signals (union-find), subset relations between clocks, master-clock
  detection and input-determinism (endochrony) diagnostics.
"""

from repro.clocks.expr import (
    CEmpty,
    CInter,
    CSample,
    CUnion,
    CVar,
    ClockExpr,
    inter,
    union,
)
from repro.clocks.calculus import ClockConstraint, extract_constraints
from repro.clocks.hierarchy import ClockAnalysis, analyze_clocks

__all__ = [
    "CEmpty",
    "CInter",
    "CSample",
    "CUnion",
    "CVar",
    "ClockExpr",
    "inter",
    "union",
    "ClockConstraint",
    "extract_constraints",
    "ClockAnalysis",
    "analyze_clocks",
]
