"""Clock hierarchy: synchrony classes, subset relations, determinism.

From the constraint set of :mod:`repro.clocks.calculus` this module builds

- *synchrony classes*: signals provably sharing one clock (union-find over
  ``^x = ^y`` constraints);
- *subset edges* between classes, derived from sampling
  (``^x = ^y * [z]`` gives ``x ⊆ y`` and ``x ⊆ z``) and merging
  (``^x = ^y + ^z`` gives ``y ⊆ x`` and ``z ⊆ x``);
- a *determinism report*: starting from the input signals, which clocks
  are computable from input presence and boolean values alone?  A design
  whose clocks are all determined runs on :class:`~repro.sim.engine.Reactor`
  without an oracle; free clocks are listed explicitly.  This is the
  pragmatic counterpart of Polychrony's endochrony test.
- *master clock* detection: a class that is a superset of every clock.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from repro.clocks.calculus import ClockConstraint, extract_constraints
from repro.clocks.expr import CInter, CSample, CUnion, CVar, ClockExpr
from repro.lang.ast import Component


class _UnionFind:
    def __init__(self):
        self._parent: Dict[str, str] = {}

    def add(self, x: str) -> None:
        self._parent.setdefault(x, x)

    def find(self, x: str) -> str:
        self.add(x)
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # deterministic representative: lexicographically smallest
            lo, hi = sorted((ra, rb))
            self._parent[hi] = lo

    def classes(self) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {}
        for x in self._parent:
            out.setdefault(self.find(x), set()).add(x)
        return out


class ClockAnalysis(NamedTuple):
    """Result of :func:`analyze_clocks`."""

    classes: Dict[str, FrozenSet[str]]           # representative -> members
    rep: Dict[str, str]                          # signal -> representative
    definitions: Dict[str, Tuple[ClockExpr, ...]]  # rep -> defining exprs
    subset: Dict[str, FrozenSet[str]]            # rep -> reps it is within
    determined: FrozenSet[str]                   # reps computable from inputs
    free: FrozenSet[str]                         # reps needing an oracle
    master: Optional[str]                        # rep above all clocks, if any
    dead: FrozenSet[str]                         # reps with a provably empty clock

    def is_input_deterministic(self) -> bool:
        """True when every clock is determined by input presence/values —
        the design simulates without an oracle (endochrony proxy)."""
        return not self.free

    def synchronous(self, a: str, b: str) -> bool:
        """Are signals ``a`` and ``b`` provably synchronous?"""
        return self.rep.get(a, a) == self.rep.get(b, b)

    def render(self) -> str:
        lines = ["clock classes:"]
        for rep, members in sorted(self.classes.items()):
            mark = ""
            if rep in self.dead:
                mark = "   (never present!)"
            elif rep == self.master:
                mark = "   (master)"
            elif rep in self.free:
                mark = "   (free)"
            lines.append("  {{{}}}{}".format(", ".join(sorted(members)), mark))
        for rep, exprs in sorted(self.definitions.items()):
            for e in exprs:
                lines.append("  ^{} = {}".format(rep, e))
        return "\n".join(lines)


def _rewrite(expr: ClockExpr, find) -> ClockExpr:
    """Replace CVar leaves by their class representative."""
    if isinstance(expr, CVar):
        return CVar(find(expr.name))
    if isinstance(expr, CSample):
        return expr
    if isinstance(expr, CUnion):
        from repro.clocks.expr import union

        return union(*[_rewrite(p, find) for p in expr.parts])
    if isinstance(expr, CInter):
        from repro.clocks.expr import inter

        return inter(*[_rewrite(p, find) for p in expr.parts])
    return expr


def analyze_clocks(
    component: Component, constraints: Optional[List[ClockConstraint]] = None
) -> ClockAnalysis:
    """Build the clock hierarchy of ``component``.

    ``constraints`` may be supplied (e.g. from a prior
    :func:`~repro.clocks.calculus.extract_constraints` call) to skip
    re-extraction.
    """
    if constraints is None:
        constraints = extract_constraints(component)
    uf = _UnionFind()
    for name in component.signals():
        uf.add(name)
    # fresh normalization locals appear only in constraints
    for c in constraints:
        for leaf in (c.left, c.right):
            for atom in leaf.leaves():
                if isinstance(atom, (CVar,)):
                    uf.add(atom.name)
                elif isinstance(atom, CSample):
                    uf.add(atom.name)

    # 1. merge plain synchrony (CVar = CVar)
    pending: List[ClockConstraint] = []
    for c in constraints:
        if isinstance(c.left, CVar) and isinstance(c.right, CVar):
            uf.union(c.left.name, c.right.name)
        else:
            pending.append(c)

    # 2. record definitions per class
    definitions: Dict[str, List[ClockExpr]] = {}
    for c in pending:
        assert isinstance(c.left, CVar)
        rep = uf.find(c.left.name)
        definitions.setdefault(rep, []).append(c.right)

    classes = {rep: frozenset(members) for rep, members in uf.classes().items()}
    rep_of = {name: uf.find(name) for members in classes.values() for name in members}

    def find(name: str) -> str:
        return rep_of.get(name, name)

    defs_rw: Dict[str, Tuple[ClockExpr, ...]] = {
        rep: tuple(sorted({_rewrite(e, find) for e in exprs}, key=lambda e: e.key()))
        for rep, exprs in definitions.items()
    }

    # 3. subset edges from definitions
    subset: Dict[str, Set[str]] = {rep: set() for rep in classes}
    for rep, exprs in defs_rw.items():
        for e in exprs:
            if isinstance(e, CInter):
                for part in e.parts:
                    for atom in part.leaves():
                        target = find(
                            atom.name if isinstance(atom, (CVar, CSample)) else rep
                        )
                        subset[rep].add(target)
            elif isinstance(e, CUnion):
                for part in e.parts:
                    for atom in part.leaves():
                        other = find(
                            atom.name if isinstance(atom, (CVar, CSample)) else rep
                        )
                        subset.setdefault(other, set()).add(rep)
            elif isinstance(e, CSample):
                subset[rep].add(find(e.name))
            elif isinstance(e, CVar):
                # should have been merged, but keep safe
                subset[rep].add(find(e.name))

    # 4. determinism: clocks computable from input presence + values
    input_reps = {find(n) for n in component.inputs}
    determined: Set[str] = set(input_reps)
    changed = True
    while changed:
        changed = False
        for rep, exprs in defs_rw.items():
            if rep in determined:
                continue
            for e in exprs:
                leaves = e.leaves()
                if not leaves:
                    continue
                ok = True
                for atom in leaves:
                    if isinstance(atom, CVar):
                        ok = ok and find(atom.name) in determined
                    elif isinstance(atom, CSample):
                        # need both the clock and the value of the sampled
                        # signal; value availability follows its clock here
                        ok = ok and find(atom.name) in determined
                if ok:
                    determined.add(rep)
                    changed = True
                    break
    free = frozenset(set(classes) - determined)

    # 5. master clock: a class that is a (reflexive-transitive) superset of
    # every class along subset edges
    def supersets(rep: str, seen: Set[str]) -> Set[str]:
        out = {rep}
        for up in subset.get(rep, ()):  # rep ⊆ up
            if up not in seen:
                seen.add(up)
                out |= supersets(up, seen)
        return out

    master = None
    all_sup = {rep: supersets(rep, {rep}) for rep in classes}
    candidates = set(classes)
    for rep in classes:
        candidates &= all_sup[rep]
    if candidates:
        master = sorted(candidates)[0]

    # 6. empty clocks: a definition normalizing to 0, or an intersection
    # with a provably dead class, makes the whole class dead
    from repro.clocks.expr import CEmpty as _CE

    dead: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for rep, exprs in defs_rw.items():
            if rep in dead:
                continue
            for e in exprs:
                if e is _CE:
                    dead.add(rep)
                    changed = True
                    break
                if isinstance(e, CInter) and any(
                    isinstance(p, CVar) and find(p.name) in dead for p in e.parts
                ):
                    dead.add(rep)
                    changed = True
                    break

    return ClockAnalysis(
        classes=classes,
        rep=rep_of,
        definitions=defs_rw,
        subset={k: frozenset(v) for k, v in subset.items()},
        determined=frozenset(determined),
        free=free,
        master=master,
        dead=frozenset(dead),
    )
