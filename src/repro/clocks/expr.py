"""Clock expressions and their normalization.

A clock denotes a set of instants.  The grammar mirrors Signal's clock
algebra:

- ``CVar(x)`` — the (unknown) clock of signal ``x``;
- ``CSample(z, True)`` — the instants where boolean signal ``z`` is
  present *and true* (written ``[z]``); ``CSample(z, False)`` is ``[not z]``;
- ``CUnion`` / ``CInter`` — set union / intersection;
- ``CEmpty`` — the null clock.

Normalization flattens nested unions/intersections, sorts and dedupes
operands, collapses trivial cases, and applies
``[z] inter [not z] = empty`` and ``CVar(z) ⊇ [z]`` absorption
(``CVar(z) inter CSample(z, p) = CSample(z, p)`` and the union dual).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple


class ClockExpr:
    """Base class; instances are immutable and totally ordered by key."""

    __slots__ = ()

    def key(self) -> Tuple:
        raise NotImplementedError

    def __eq__(self, other):
        return isinstance(other, ClockExpr) and self.key() == other.key()

    def __lt__(self, other: "ClockExpr"):
        return self.key() < other.key()

    def __hash__(self):
        return hash(self.key())

    def leaves(self) -> FrozenSet["ClockExpr"]:
        """The CVar/CSample atoms this expression is built from."""
        return frozenset([self])


class CEmptyType(ClockExpr):
    __slots__ = ()

    def key(self):
        return ("0",)

    def leaves(self):
        return frozenset()

    def __repr__(self):
        return "0"


CEmpty = CEmptyType()


class CVar(ClockExpr):
    """The clock of a signal."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def key(self):
        return ("v", self.name)

    def __repr__(self):
        return "^{}".format(self.name)


class CSample(ClockExpr):
    """Instants where boolean signal ``name`` is present with the given value."""

    __slots__ = ("name", "polarity")

    def __init__(self, name: str, polarity: bool = True):
        self.name = name
        self.polarity = bool(polarity)

    def key(self):
        return ("s", self.name, self.polarity)

    def __repr__(self):
        return "[{}{}]".format("" if self.polarity else "not ", self.name)


class _NAry(ClockExpr):
    __slots__ = ("parts",)
    _tag = "?"

    def __init__(self, parts: Iterable[ClockExpr]):
        self.parts: Tuple[ClockExpr, ...] = tuple(sorted(set(parts)))

    def key(self):
        return (self._tag,) + tuple(p.key() for p in self.parts)

    def leaves(self):
        out = frozenset()
        for p in self.parts:
            out |= p.leaves()
        return out


class CUnion(_NAry):
    __slots__ = ()
    _tag = "u"

    def __repr__(self):
        return "(" + " + ".join(repr(p) for p in self.parts) + ")"


class CInter(_NAry):
    __slots__ = ()
    _tag = "i"

    def __repr__(self):
        return "(" + " * ".join(repr(p) for p in self.parts) + ")"


def _flatten(cls, parts):
    out = []
    for p in parts:
        if isinstance(p, cls):
            out.extend(p.parts)
        else:
            out.append(p)
    return out


def union(*parts: ClockExpr) -> ClockExpr:
    """Normalized union of clocks."""
    flat = [p for p in _flatten(CUnion, parts) if p is not CEmpty]
    flat = sorted(set(flat))
    # CVar(z) + [z] = CVar(z)
    names = {p.name for p in flat if isinstance(p, CVar)}
    flat = [
        p for p in flat if not (isinstance(p, CSample) and p.name in names)
    ]
    # [z] + [not z] = CVar(z)
    samples = [p for p in flat if isinstance(p, CSample)]
    by_name = {}
    for s in samples:
        by_name.setdefault(s.name, set()).add(s.polarity)
    promote = {n for n, pols in by_name.items() if pols == {True, False}}
    if promote:
        flat = [
            p for p in flat if not (isinstance(p, CSample) and p.name in promote)
        ]
        flat.extend(CVar(n) for n in promote)
        flat = sorted(set(flat))
    if not flat:
        return CEmpty
    if len(flat) == 1:
        return flat[0]
    return CUnion(flat)


def inter(*parts: ClockExpr) -> ClockExpr:
    """Normalized intersection of clocks."""
    flat = _flatten(CInter, parts)
    if any(p is CEmpty for p in flat):
        return CEmpty
    flat = sorted(set(flat))
    # [z] * [not z] = 0
    pols = {}
    for p in flat:
        if isinstance(p, CSample):
            pols.setdefault(p.name, set()).add(p.polarity)
    if any(v == {True, False} for v in pols.values()):
        return CEmpty
    # CVar(z) * [z] = [z]
    sampled = set(pols)
    flat = [
        p for p in flat if not (isinstance(p, CVar) and p.name in sampled)
    ]
    if not flat:
        return CEmpty
    if len(flat) == 1:
        return flat[0]
    return CInter(flat)
