"""``make serve-smoke``: end-to-end gate for the verification service.

Spins up a real :class:`~repro.service.server.ServiceServer` (process
pool, ephemeral port), pushes a small mixed batch over the socket,
asserts every job's digest is byte-identical to in-process sequential
execution, resubmits the batch to check the warm result cache serves it,
and shuts down cleanly.  Exits non-zero on any mismatch — CI runs this
next to the soak smoke.

Run directly with ``python -m repro.service.smoke [--workers N]``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.service import ResultCache, Scheduler, ServiceClient, ServiceServer
from repro.service import runner


def mixed_batch() -> List[Dict]:
    """A small batch touching every job kind and several designs."""
    jobs: List[Dict] = []
    for design in ("producer_consumer", "producer_accumulator",
                   "modular_producer_consumer", "boolean_producer_consumer",
                   "request_response", "fan_out"):
        jobs.append({"kind": "lint", "design": design, "params": {}})
        jobs.append({
            "kind": "lint", "design": design,
            "params": {"rates": ["p_act:1", "x_rreq:2"]},
        })
    for stages in (2, 3):
        jobs.append({
            "kind": "lint",
            "design": {"name": "pipeline", "args": {"stages": stages}},
            "params": {},
        })
    jobs.append({
        "kind": "verify", "design": "boolean_producer_consumer",
        "params": {"backend": "explicit", "never": "y"},
    })
    jobs.append({
        "kind": "verify", "design": "boolean_producer_consumer",
        "params": {"backend": "symbolic", "never": "y"},
    })
    jobs.append({
        "kind": "verify", "design": "producer_consumer",
        "params": {"backend": "bounded", "never": "y", "depth": 4},
    })
    for seed in (1, 2):
        jobs.append({
            "kind": "soak", "design": "producer_consumer",
            "params": {"seed": seed, "drop": 0.15, "horizon": 10.0},
        })
    jobs.append({
        "kind": "estimate", "design": "producer_consumer",
        "params": {"horizon": 6},
    })
    return jobs


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workers", type=int, default=2)
    args = ap.parse_args(argv)

    batch = mixed_batch()
    print("serve-smoke: {} mixed jobs, {} workers".format(len(batch), args.workers))

    # sequential in-process reference
    reference = [runner.execute(dict(spec)) for spec in batch]

    scheduler = Scheduler(workers=args.workers, cache=ResultCache(1024))
    server = ServiceServer(scheduler, port=0)
    failures = 0
    with server:
        host, port = server.address
        with ServiceClient(host, port) as client:
            assert client.ping().startswith("repro-service")
            ids = client.submit(batch)
            jobs = client.wait(ids, timeout=300)
            for spec, ref, summary in zip(batch, reference, jobs):
                if summary["state"] != "done":
                    print("FAIL {}: state={} error={}".format(
                        summary["id"], summary["state"], summary.get("error")))
                    failures += 1
                elif summary["digest"] != ref["digest"]:
                    print("FAIL {}: digest mismatch for {!r}".format(
                        summary["id"], spec))
                    failures += 1
            # warm resubmission: every job must be served from the cache
            warm_ids = client.submit(batch)
            warm = client.wait(warm_ids, timeout=60)
            served = sum(1 for s in warm if s.get("cache_hit"))
            stats = client.stats()
            client.shutdown()
    print("cold: {}/{} byte-identical to sequential".format(
        len(batch) - failures, len(batch)))
    print("warm: {}/{} served from result cache (hit rate {:.1%})".format(
        served, len(batch), stats["result_cache"]["hit_rate"]))
    print("plan cache: {hits} hits / {misses} misses".format(
        **stats["plan_cache"]))
    if served < len(batch):
        print("FAIL: warm resubmission missed the cache")
        failures += 1
    print("serve-smoke: {}".format("OK" if failures == 0 else "FAILED"))
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
