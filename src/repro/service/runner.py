"""Deterministic per-job execution for the verification service.

:func:`execute` is the one entry point: a **module-level, picklable**
function from a job-spec dict to a JSON envelope, so the scheduler can
install it in a persistent process pool through the same initializer
machinery :mod:`repro.perf.sweep` uses, or call it inline.

The determinism contract every handler honors:

- no wall-clock, process id, or environment-dependent values in the
  ``result`` payload (wall time lives next to the envelope in the
  scheduler's :class:`~repro.service.scheduler.JobRecord`, outside the
  digest);
- all dict-shaped output is either naturally ordered or sorted before it
  is returned, and the digest is taken over :func:`canonical_json`;
- randomness only ever comes from seeds carried in ``params``.

Byte-identity of :func:`execute` output across worker counts and
scheduling orders is asserted by ``tests/test_service.py``, the
``make serve-smoke`` gate and experiment A12.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

from repro.service.jobs import (
    job_key,
    resolve_program,
    result_digest,
    spec_from_dict,
)


def execute(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job; return its result envelope.

    The envelope is ``{"kind", "key", "digest", "result"}`` where
    ``digest`` is the content hash of ``result`` — what the byte-identity
    gates compare — and ``key`` is the cache address.
    """
    spec = spec_from_dict(spec_dict)
    program = resolve_program(spec.design)
    handler = _HANDLERS[spec.kind]
    result = handler(program, dict(spec.params))
    return {
        "kind": spec.kind,
        "key": job_key(spec),
        "digest": result_digest(result),
        "result": result,
    }


# -- stimulus specs -----------------------------------------------------------

def stimulus_factory(specs: Iterable[str]):
    """A zero-argument factory for the CLI-style stimulus grammar
    ``name:period[:phase[:value]]`` (value ``true``/``false``/int/
    ``count``); no specs means silence."""
    from repro.sim import stimuli

    specs = list(specs)

    def build():
        import itertools

        parts = []
        for spec in specs:
            fields = spec.split(":")
            if len(fields) < 2:
                raise ValueError(
                    "bad stimulus {!r}: want name:period[:phase[:value]]".format(spec)
                )
            name, period = fields[0], int(fields[1])
            phase = int(fields[2]) if len(fields) > 2 else 0
            if len(fields) > 3:
                raw = fields[3]
                if raw == "count":
                    values = stimuli.counter()
                elif raw in ("true", "false"):
                    values = itertools.repeat(raw == "true")
                else:
                    values = itertools.repeat(int(raw))
                parts.append(stimuli.periodic(name, period, values=values, phase=phase))
            else:
                parts.append(stimuli.periodic(name, period, phase=phase))
        if not parts:
            return stimuli.silence()
        return stimuli.merge(*parts)

    return build


# -- handlers -----------------------------------------------------------------

def _as_list(value) -> list:
    """Normalize list-shaped params: the CLI shorthand yields a bare
    scalar when only one item was given."""
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def _run_lint(program, params: Dict[str, Any]) -> Dict[str, Any]:
    """``lint``: the full SIG*/GALS* rule set.

    Params: ``rates`` (list of ``name:word`` presence assumptions),
    ``synchronous`` (treat shared signals as wires, not channels),
    ``select`` / ``ignore`` (rule-code prefixes).
    """
    import json

    from repro.lint import lint_program, parse_rates

    rates = parse_rates(_as_list(params.get("rates"))) or None
    report = lint_program(
        program,
        file=program.name,
        rates=rates,
        cut_channels=not params.get("synchronous", False),
        select=tuple(_as_list(params.get("select"))),
        ignore=tuple(_as_list(params.get("ignore"))),
    )
    payload = json.loads(report.to_json())
    return {
        "program": report.program,
        "diagnostics": payload["diagnostics"],
        "codes": report.codes(),
        "errors": len(report.errors),
        "clean": not report.diagnostics,
    }


def _run_estimate(program, params: Dict[str, Any]) -> Dict[str, Any]:
    """``estimate``: the Section 5.2 buffer-size loop.

    Params: ``stim`` (stimulus specs; default a steady ``p_act:1`` /
    ``x_rreq:2`` environment), ``horizon`` (default 8), ``initial``,
    ``kind`` (``direct``/``rreq``), ``max_iterations``, ``max_capacity``.
    """
    from repro.desync.estimator import estimate_buffer_sizes

    report = estimate_buffer_sizes(
        program,
        stimulus_factory(_as_list(params.get("stim")) or ["p_act:1", "x_rreq:2"]),
        horizon=int(params.get("horizon", 8)),
        initial=params.get("initial", 1),
        kind=params.get("kind", "direct"),
        max_iterations=int(params.get("max_iterations", 16)),
        max_capacity=params.get("max_capacity"),
    )
    return {
        "converged": report.converged,
        "iterations": report.iterations,
        "sizes": dict(sorted(report.sizes.items())),
        "history": [
            {
                "iteration": step.iteration,
                "sizes": dict(sorted(step.sizes.items())),
                "misses": dict(sorted(step.misses.items())),
                "alarms": dict(sorted(step.alarms.items())),
            }
            for step in report.history
        ],
    }


def _run_verify(program, params: Dict[str, Any]) -> Dict[str, Any]:
    """``verify``: a "``never`` is never present" obligation.

    Params: ``never`` (signal, default ``alarm``), ``backend``
    (``explicit``/``symbolic``/``bounded``/``compose``), ``int_values``,
    ``always`` / ``never_input`` (pinned inputs), ``max_states``
    (explicit), ``depth`` (bounded).

    When the persistent verification store is enabled (see
    :mod:`repro.mc.store`), final verdicts are cached under a
    ``verify-verdict`` key of the resolved design plus every
    result-relevant parameter, and the store is threaded into the
    backends so exploration intermediates (compiled LTSs, symbolic
    fixpoints) persist even across *different* obligations on the same
    design.  The cached payload is the handler's own return value, so a
    warm hit is digest-identical by construction.
    """
    from repro.lang import flatten_program
    from repro.mc import (
        bounded_never_present,
        check_never_present,
        compile_lts,
        input_alphabet,
    )
    from repro.mc.store import default_store

    never = params.get("never", "alarm")
    backend = params.get("backend", "explicit")
    flat = flatten_program(program)
    alphabet = input_alphabet(
        flat,
        int_values=tuple(_as_list(params.get("int_values")) or (0, 1)),
        always_present=tuple(_as_list(params.get("always"))),
        never_present=tuple(_as_list(params.get("never_input"))),
    )
    store = default_store()
    verdict_key = None
    if store is not None:
        from repro.mc.store import design_content_key, store_key

        relevant: Dict[str, Any] = {
            "backend": backend,
            "never": never,
            "int_values": list(_as_list(params.get("int_values")) or (0, 1)),
            "always": _as_list(params.get("always")),
            "never_input": _as_list(params.get("never_input")),
        }
        if backend in ("explicit", "compose"):
            relevant["max_states"] = int(params.get("max_states", 20000))
        if backend == "compose":
            relevant["contracts"] = params.get("contracts") or {}
        if backend == "bounded":
            relevant["depth"] = int(params.get("depth", 6))
        verdict_key = store_key(
            "verify-verdict", design_content_key(flat), relevant
        )
        cached = store.get(verdict_key, kind="verify-verdict")
        if cached is not None:
            return cached
    if backend == "symbolic":
        from repro.mc.symbolic import SymbolicChecker

        chk = SymbolicChecker(flat, alphabet=alphabet, store=store)
        ce = chk.check_never_present(never)
        result = {
            "backend": backend,
            "never": never,
            "verdict": "proven" if ce is None else "refuted",
            "states": chk.state_count(),
            "iterations": chk.iterations,
            "counterexample": None if ce is None else ce.render(),
        }
    elif backend == "bounded":
        depth = int(params.get("depth", 6))
        res = bounded_never_present(flat, never, depth=depth, alphabet=alphabet)
        result = {
            "backend": backend,
            "never": never,
            "verdict": "safe_up_to_bound" if res.safe_up_to_bound else "refuted",
            "depth": depth,
            "explored": res.explored,
            "counterexample": (
                None if res.counterexample is None else res.counterexample.render()
            ),
        }
    elif backend == "compose":
        from repro.mc.compose import verify_composed

        cert = verify_composed(
            program,
            never,
            contracts=params.get("contracts"),
            int_values=tuple(_as_list(params.get("int_values")) or (0, 1)),
            always_present=tuple(_as_list(params.get("always"))),
            never_present=tuple(_as_list(params.get("never_input"))),
            max_states=int(params.get("max_states", 20000)),
            store=store,
        )
        result = {
            "backend": backend,
            "never": never,
            "verdict": cert.verdict,
            "method": cert.method,
            "checks": cert.num_checks,
            "largest_check_states": cert.largest_check_states,
            "counterexample": (
                None
                if cert.counterexample is None
                else cert.counterexample.render()
            ),
        }
    elif backend == "explicit":
        lts = compile_lts(
            flat,
            alphabet=alphabet,
            max_states=int(params.get("max_states", 20000)),
            store=store,
        )
        ce = check_never_present(lts, never)
        result = {
            "backend": backend,
            "never": never,
            "verdict": "proven" if ce is None else "refuted",
            "states": lts.num_states(),
            "transitions": lts.num_transitions(),
            "counterexample": None if ce is None else ce.render(),
        }
    else:
        raise ValueError("unknown verify backend {!r}".format(backend))
    if verdict_key is not None:
        store.put(verdict_key, "verify-verdict", result)
    return result


def _run_prove(program, params: Dict[str, Any]) -> Dict[str, Any]:
    """``prove``: the static flow-equivalence prover.

    Params: ``rates`` (list of ``name:word`` assumptions — enables the
    affine inductive path), ``capacities`` (int or ``{signal: n}``),
    ``backend`` (``auto``/``affine``/``explicit``/``symbolic``/
    ``compose``), ``fifo`` (``direct``/``boolean``), ``backpressure``
    (``{component: input}``), ``int_values`` / ``always`` /
    ``never_input`` / ``max_states`` (product alphabet and bounds).

    The certificate is itself store-cached (kind ``prove-certificate``)
    inside :func:`repro.prove.prove_flow_equivalence`, so no extra
    caching layer is needed here — a warm run returns the byte-identical
    ``to_dict()`` payload the cold run stored.
    """
    from repro.lint import parse_rates
    from repro.mc.store import default_store
    from repro.prove import prove_flow_equivalence

    capacities = params.get("capacities", 1)
    if not isinstance(capacities, int):
        capacities = {k: int(v) for k, v in dict(capacities).items()}
    cert = prove_flow_equivalence(
        program,
        rates=parse_rates(_as_list(params.get("rates"))),
        capacities=capacities,
        backend=params.get("backend", "auto"),
        int_values=tuple(_as_list(params.get("int_values")) or (0, 1)),
        always=tuple(_as_list(params.get("always"))),
        never_input=tuple(_as_list(params.get("never_input"))),
        max_states=int(params.get("max_states", 20000)),
        read_requests=params.get("read_requests"),
        fifo=params.get("fifo", "direct"),
        backpressure=params.get("backpressure"),
        store=default_store(),
    )
    return cert.to_dict()


def _run_soak(program, params: Dict[str, Any]) -> Dict[str, Any]:
    """``soak``: seeded fault injection against the zero-fault reference.

    Params: fault rates (``drop``/``duplicate``/``reorder``/``window``/
    ``jitter``/``corrupt``/``stall``/``stall_period``), ``seed``,
    ``horizon`` (default 12), and the steady-workload periods
    ``period`` / ``reader_period``.
    """
    from repro.faults import soak, uniform_plan
    from repro.workloads import scenarios

    plan = uniform_plan(
        seed=int(params.get("seed", 0)),
        drop=float(params.get("drop", 0.0)),
        duplicate=float(params.get("duplicate", 0.0)),
        reorder=float(params.get("reorder", 0.0)),
        window=int(params.get("window", 2)),
        jitter=float(params.get("jitter", 0.0)),
        corrupt=float(params.get("corrupt", 0.0)),
        stall=float(params.get("stall", 0.0)),
        stall_period=float(params.get("stall_period", 1.0)),
    )
    workload = scenarios.steady(
        producer_period=int(params.get("period", 1)),
        reader_period=int(params.get("reader_period", 1)),
    )
    report = soak(program, workload, plan, horizon=float(params.get("horizon", 12.0)))
    return {
        "flow_equivalent": report.flow_equivalent,
        "classification": dict(sorted(report.classification.items())),
        "fault_counts": {
            k: v
            for k, v in sorted(report.fault_counts.items())
            if isinstance(v, (int, bool))
        },
    }


_HANDLERS = {
    "lint": _run_lint,
    "estimate": _run_estimate,
    "verify": _run_verify,
    "prove": _run_prove,
    "soak": _run_soak,
}
