"""Priority scheduler and persistent worker pool for verification jobs.

This generalizes :mod:`repro.perf.sweep` — one grid, one ephemeral pool,
results gathered at the end — into a long-lived service:

- **submission** is open-ended and thread-safe; jobs land in a priority
  heap (higher ``priority`` first, FIFO within a band) and get a stable
  ``J...`` id;
- **states** move ``pending → running → done/failed``, with
  ``cancelled`` reachable from ``pending``; terminal records keep the
  result envelope, the error string, wall time and the perf-counter
  delta the job produced;
- **the pool is persistent**: worker processes are initialized once with
  :func:`repro.service.runner.execute` through the same
  ``_init_worker`` / ``_run_task`` machinery the sweep executor uses
  (so per-task counter capture and error capture are shared code), and
  a dispatcher thread backfills a free slot with the
  highest-priority pending job the moment one opens — no barriers
  between batches;
- **results are content-addressed**: before queueing, the scheduler
  consults the :class:`~repro.service.cache.ResultCache`; a hit
  completes the job instantly (``cache_hit=True``).  A miss that
  matches a job already pending or running is *coalesced* — it waits on
  the in-flight twin instead of recomputing — and counted under
  ``service.jobs_coalesced``;
- **events**: every state change is broadcast to subscriber queues,
  which is what the socket server's ``watch`` op streams.

Worker-count invariance: job execution is deterministic and per-job
isolated, so the only thing ``workers`` changes is wall time.  The A12
bench pushes the same 10k-job batch through 1/2/4 workers and asserts
digest equality against in-process sequential execution.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.perf import PERF
from repro.perf.sweep import (
    TaskResult,
    _init_worker,
    _merge_back,
    _run_task,
    _run_task_inline,
    _NO_SHARED,
)
from repro.service.cache import ResultCache
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    JobSpec,
    job_key,
    spec_from_dict,
)
from repro.service import runner


class JobRecord:
    """Mutable per-job state owned by the scheduler (snapshot with
    :meth:`summary`; the scheduler's lock guards mutation)."""

    __slots__ = (
        "job_id", "spec", "key", "state", "envelope", "error",
        "seconds", "counters", "cache_hit", "coalesced", "submitted_seq",
    )

    def __init__(self, job_id: str, spec: JobSpec, key: str, seq: int) -> None:
        self.job_id = job_id
        self.spec = spec
        self.key = key
        self.state = PENDING
        self.envelope: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.seconds: Optional[float] = None
        self.counters: Dict[str, Any] = {}
        self.cache_hit = False
        self.coalesced = False
        self.submitted_seq = seq

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def summary(self) -> Dict[str, Any]:
        out = {
            "id": self.job_id,
            "kind": self.spec.kind,
            "key": self.key,
            "state": self.state,
            "priority": self.spec.priority,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
        }
        if self.seconds is not None:
            out["seconds"] = round(self.seconds, 6)
        if self.error is not None:
            out["error"] = self.error
        if self.envelope is not None:
            out["digest"] = self.envelope["digest"]
        return out


class Scheduler:
    """The verification-job platform: priority queue, persistent pool,
    result cache, progress events."""

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        cache_capacity: int = 4096,
        use_processes: Optional[bool] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        # one in-process executor slot is both the workers=1 sequential
        # reference and the no-fork fallback; >=2 workers get a
        # persistent process pool unless explicitly disabled
        self.use_processes = (
            self.workers > 1 if use_processes is None else bool(use_processes)
        )
        self.cache = cache if cache is not None else ResultCache(cache_capacity)
        self._lock = threading.RLock()
        self._cv = threading.Condition(self._lock)
        self._heap: List[Any] = []  # (-priority, seq, job_id)
        self._jobs: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        self._inflight_by_key: Dict[str, List[str]] = {}
        self._subscribers: List["queue.Queue"] = []
        self._seq = itertools.count()
        self._inflight = 0
        self._stop = False
        self._started = False
        self._pool: Optional[ProcessPoolExecutor] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._executed = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Scheduler":
        """Bring up the pool and the dispatcher; idempotent."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._stop = False
        if self.use_processes:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(runner.execute, None, False),
            )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        self._dispatcher.start()
        return self

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self, drain: bool = False) -> None:
        """Stop the service.  ``drain=True`` finishes the queue first;
        otherwise still-pending jobs are marked cancelled."""
        if drain:
            self.wait()
        with self._cv:
            self._stop = True
            if not drain:
                for job_id in self._order:
                    record = self._jobs[job_id]
                    if record.state == PENDING:
                        self._finish_locked(record, CANCELLED)
            self._cv.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=30)
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._lock:
            self._started = False

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        spec: Union[JobSpec, Dict[str, Any]],
        priority: Optional[int] = None,
    ) -> str:
        """Queue one job; returns its id immediately.

        Cache hits complete synchronously; a job whose key is already
        pending or running coalesces onto the in-flight twin.
        """
        if isinstance(spec, dict):
            spec = spec_from_dict(spec)
        if priority is not None:
            spec = spec._replace(priority=int(priority))
        key = job_key(spec)
        cached = self.cache.get(key)
        with self._cv:
            seq = next(self._seq)
            job_id = "J{:06d}".format(seq)
            record = JobRecord(job_id, spec, key, seq)
            self._jobs[job_id] = record
            self._order.append(job_id)
            PERF.incr("service.jobs_submitted")
            if cached is not None:
                record.cache_hit = True
                record.seconds = 0.0
                record.envelope = cached
                self._finish_locked(record, DONE)
                return job_id
            twins = self._inflight_by_key.get(key)
            if twins is not None:
                record.coalesced = True
                twins.append(job_id)
                PERF.incr("service.jobs_coalesced")
                self._emit(record)
                return job_id
            self._inflight_by_key[key] = [job_id]
            heapq.heappush(self._heap, (-spec.priority, seq, job_id))
            self._emit(record)
            self._cv.notify_all()
            return job_id

    def submit_many(
        self, specs: Iterable[Union[JobSpec, Dict[str, Any]]]
    ) -> List[str]:
        return [self.submit(spec) for spec in specs]

    def cancel(self, job_id: str) -> bool:
        """Cancel a pending job (running jobs finish; terminal jobs are
        left alone).  Returns whether the state changed."""
        with self._cv:
            record = self._jobs.get(job_id)
            if record is None or record.state != PENDING:
                return False
            followers = self._inflight_by_key.get(record.key)
            if followers and job_id in followers:
                was_leader = followers[0] == job_id
                followers.remove(job_id)
                if not followers:
                    # nobody is waiting on this key anymore; the heap
                    # entry (if any) is skipped lazily by the dispatcher
                    del self._inflight_by_key[record.key]
                elif was_leader:
                    # the queued heap entry pointed at the cancelled
                    # leader; promote the next coalesced twin so the key
                    # still gets computed
                    heir = self._jobs[followers[0]]
                    heapq.heappush(
                        self._heap,
                        (-heir.spec.priority, heir.submitted_seq, heir.job_id),
                    )
                    self._cv.notify_all()
            self._finish_locked(record, CANCELLED)
            return True

    # -- inspection ---------------------------------------------------------

    def job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        with self._lock:
            records = [self._jobs[j] for j in self._order]
        if state is not None:
            records = [r for r in records if r.state == state]
        return records

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The result envelope of a finished job (``None`` until done)."""
        record = self.job(job_id)
        return None if record is None else record.envelope

    def stats(self) -> Dict[str, Any]:
        from repro.sim.plan import plan_cache_stats

        with self._lock:
            by_state: Dict[str, int] = {}
            for record in self._jobs.values():
                by_state[record.state] = by_state.get(record.state, 0) + 1
            out = {
                "workers": self.workers,
                "processes": self.use_processes,
                "submitted": len(self._jobs),
                "executed": self._executed,
                "inflight": self._inflight,
                "queued": sum(1 for r in self._jobs.values() if r.state == PENDING),
                "states": dict(sorted(by_state.items())),
            }
        out["result_cache"] = self.cache.stats()
        out["plan_cache"] = plan_cache_stats()
        from repro.mc.store import global_stats

        out["mc_store"] = global_stats()
        return out

    # -- waiting and events -------------------------------------------------

    def wait(
        self,
        job_ids: Optional[Sequence[str]] = None,
        timeout: Optional[float] = None,
    ) -> bool:
        """Block until the given jobs (default: all submitted so far) are
        terminal; returns ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            ids = list(job_ids) if job_ids is not None else list(self._order)
            while True:
                if all(
                    self._jobs[j].done for j in ids if j in self._jobs
                ):
                    return True
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cv.wait(remaining if remaining is not None else 1.0)

    def subscribe(self) -> "queue.Queue":
        """A queue receiving one event dict per job state change."""
        q: "queue.Queue" = queue.Queue()
        with self._lock:
            self._subscribers.append(q)
        return q

    def unsubscribe(self, q: "queue.Queue") -> None:
        with self._lock:
            if q in self._subscribers:
                self._subscribers.remove(q)

    def _emit(self, record: JobRecord) -> None:
        event = {"event": "job"}
        event.update(record.summary())
        for q in list(self._subscribers):
            q.put(event)

    # -- dispatch -----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while not self._stop and not (
                    self._heap and self._inflight < self.workers
                ):
                    self._cv.wait(0.5)
                if self._stop:
                    return
                _, seq, job_id = heapq.heappop(self._heap)
                record = self._jobs[job_id]
                if record.state != PENDING:
                    continue  # cancelled while queued
                record.state = RUNNING
                self._inflight += 1
                self._emit(record)
            spec_dict = record.spec.to_dict()
            if self._pool is not None:
                try:
                    future = self._pool.submit(_run_task, seq, spec_dict, True)
                except RuntimeError:
                    # pool torn down under us (shutdown race): requeue
                    with self._cv:
                        record.state = PENDING
                        self._inflight -= 1
                        heapq.heappush(
                            self._heap, (-record.spec.priority, seq, job_id)
                        )
                    continue
                future.add_done_callback(
                    lambda f, job_id=job_id: self._on_future(job_id, f)
                )
            else:
                task = _run_task_inline(
                    runner.execute, _NO_SHARED, seq, spec_dict, True
                )
                self._complete(job_id, task, merge_counters=False)

    def _on_future(self, job_id: str, future: "Future") -> None:
        try:
            task = future.result()
        except Exception as exc:  # pool/pickling failure, not job failure
            task = TaskResult(
                -1, None, 0.0, {}, "{}: {}".format(type(exc).__name__, exc)
            )
        self._complete(job_id, task, merge_counters=True)

    def _complete(
        self, job_id: str, task: TaskResult, merge_counters: bool
    ) -> None:
        with self._cv:
            record = self._jobs[job_id]
            if merge_counters:
                # inline execution merged into coordinator PERF already;
                # pool workers hand their delta back here.  PERF is not
                # thread-safe, so fold under the scheduler lock.
                _merge_back(task.counters)
            record.seconds = task.seconds
            record.counters = task.counters
            self._inflight -= 1
            self._executed += 1
            followers = self._inflight_by_key.pop(record.key, [])
            if task.error is not None:
                record.error = task.error
                self._finish_locked(record, FAILED)
            else:
                record.envelope = task.value
                self.cache.put(record.key, task.value)
                self._finish_locked(record, DONE)
            for follower_id in followers:
                if follower_id == job_id:
                    continue
                follower = self._jobs[follower_id]
                if follower.state != PENDING:
                    continue
                follower.seconds = 0.0
                if task.error is not None:
                    follower.error = task.error
                    self._finish_locked(follower, FAILED)
                else:
                    follower.cache_hit = True
                    follower.envelope = task.value
                    self._finish_locked(follower, DONE)
            self._cv.notify_all()

    def _finish_locked(self, record: JobRecord, state: str) -> None:
        record.state = state
        PERF.incr("service.jobs_{}".format(state))
        self._emit(record)
        self._cv.notify_all()
