"""Line-delimited JSON socket API in front of the scheduler.

Protocol: a client connects over local TCP, sends one JSON object per
line, and reads one JSON response per line.  Every response carries
``"ok"``; errors come back as ``{"ok": false, "error": ...}`` instead of
closing the connection.  Ops:

==========  ================================================================
``ping``    liveness check; returns the service banner
``submit``  ``{"jobs": [spec, ...]}`` → ``{"ids": [...], "states": [...]}``
            (cache hits are already ``done`` when the reply arrives)
``status``  ``{"id": ...}`` → the job summary
``result``  ``{"id": ...}`` → summary plus the result envelope
``list``    ``{"state": optional}`` → all job summaries, submission order
``cancel``  ``{"id": ...}`` → whether a pending job was cancelled
``stats``   scheduler + cache + plan-cache statistics
``wait``    ``{"ids": optional, "timeout": optional}`` → blocks, then
            summaries
``watch``   ``{"ids": optional}`` → **streams** one event line per state
            change until every watched job is terminal, then a final
            ``{"ok": true, "done": true}``
``shutdown``stops the scheduler and the server
==========  ================================================================

The server binds ``127.0.0.1`` by default and is deliberately
unauthenticated — it is a local development service, the same trust
domain as running ``repro verify`` yourself.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Dict, Optional

from repro.service.scheduler import Scheduler

BANNER = "repro-service/1"


class _Handler(socketserver.StreamRequestHandler):
    daemon_threads = True

    def handle(self) -> None:
        server: "ServiceServer" = self.server.service  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                op = request.get("op")
                handler = getattr(self, "_op_" + str(op), None)
                if handler is None:
                    self._send({"ok": False, "error": "unknown op {!r}".format(op)})
                    continue
                stop = handler(server, request)
                if stop:
                    return
            except (BrokenPipeError, ConnectionResetError):
                return
            except Exception as exc:
                try:
                    self._send({
                        "ok": False,
                        "error": "{}: {}".format(type(exc).__name__, exc),
                    })
                except (BrokenPipeError, ConnectionResetError):
                    return

    def _send(self, payload: Dict[str, Any]) -> None:
        self.wfile.write((json.dumps(payload) + "\n").encode("utf-8"))
        self.wfile.flush()

    # -- ops ----------------------------------------------------------------

    def _op_ping(self, server, request) -> bool:
        self._send({"ok": True, "service": BANNER})
        return False

    def _op_submit(self, server, request) -> bool:
        jobs = request.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            self._send({"ok": False, "error": "submit needs a non-empty jobs list"})
            return False
        ids = []
        for spec in jobs:
            ids.append(server.scheduler.submit(spec))
        states = [server.scheduler.job(i).state for i in ids]
        self._send({"ok": True, "ids": ids, "states": states})
        return False

    def _record(self, server, request):
        record = server.scheduler.job(request.get("id"))
        if record is None:
            self._send({"ok": False, "error": "no such job {!r}".format(
                request.get("id"))})
        return record

    def _op_status(self, server, request) -> bool:
        record = self._record(server, request)
        if record is not None:
            self._send({"ok": True, "job": record.summary()})
        return False

    def _op_result(self, server, request) -> bool:
        record = self._record(server, request)
        if record is not None:
            self._send({
                "ok": True,
                "job": record.summary(),
                "envelope": record.envelope,
            })
        return False

    def _op_list(self, server, request) -> bool:
        state = request.get("state")
        summaries = [r.summary() for r in server.scheduler.jobs(state)]
        self._send({"ok": True, "jobs": summaries})
        return False

    def _op_cancel(self, server, request) -> bool:
        ok = server.scheduler.cancel(request.get("id"))
        self._send({"ok": True, "cancelled": ok})
        return False

    def _op_stats(self, server, request) -> bool:
        self._send({"ok": True, "stats": server.scheduler.stats()})
        return False

    def _op_wait(self, server, request) -> bool:
        ids = request.get("ids")
        finished = server.scheduler.wait(ids, timeout=request.get("timeout"))
        watched = ids if ids is not None else [
            r.job_id for r in server.scheduler.jobs()
        ]
        summaries = []
        for job_id in watched:
            record = server.scheduler.job(job_id)
            if record is not None:
                summaries.append(record.summary())
        self._send({"ok": True, "finished": finished, "jobs": summaries})
        return False

    def _op_watch(self, server, request) -> bool:
        ids = request.get("ids")
        scheduler = server.scheduler
        events = scheduler.subscribe()
        try:
            watched = set(ids) if ids is not None else None

            def all_done() -> bool:
                records = (
                    [scheduler.job(i) for i in watched]
                    if watched is not None
                    else scheduler.jobs()
                )
                return all(r is None or r.done for r in records)

            # replay current terminal states so a late watcher still sees
            # every job it asked about
            for record in scheduler.jobs():
                if watched is not None and record.job_id not in watched:
                    continue
                if record.done:
                    event = {"event": "job"}
                    event.update(record.summary())
                    self._send({"ok": True, **event})
            while not all_done():
                try:
                    event = events.get(timeout=0.5)
                except Exception:
                    continue
                if watched is not None and event.get("id") not in watched:
                    continue
                self._send({"ok": True, **event})
            self._send({"ok": True, "done": True})
        finally:
            scheduler.unsubscribe(events)
        return False

    def _op_shutdown(self, server, request) -> bool:
        self._send({"ok": True, "stopping": True})
        server.stop_async()
        return True


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServiceServer:
    """The scheduler behind a local TCP socket.

    ``port=0`` picks an ephemeral port; read it back from
    :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self):
        """``(host, port)`` actually bound."""
        return self._tcp.server_address

    def start(self) -> "ServiceServer":
        self.scheduler.start()
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            name="repro-service-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Run in the calling thread until :meth:`close` (CLI mode)."""
        self.scheduler.start()
        try:
            self._tcp.serve_forever()
        finally:
            self.close()

    def stop_async(self) -> None:
        """Initiate shutdown from a request handler without deadlocking
        on the server's own event loop."""
        threading.Thread(target=self.close, daemon=True).start()

    def close(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        self.scheduler.shutdown()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
