"""Content-addressed result cache for the verification service.

One bounded LRU maps :func:`repro.service.jobs.job_key` — the hash of a
job's resolved design content plus kind plus parameters — to the result
envelope :func:`repro.service.runner.execute` produced for it.  Because
job results are deterministic functions of their key, serving a hit is
*exactly* as good as re-running the job, so a resubmitted design costs a
hash and a dict lookup.

The cache sits between the scheduler thread and however many socket
request handlers the server spawns, so every access takes the lock.
Hit/miss/eviction counts are kept locally (:meth:`ResultCache.stats`) and
exported through :data:`repro.perf.PERF` as ``service.cache_hits`` /
``service.cache_misses`` / ``service.cache_evictions``; the compiled
plans under the jobs get the same treatment from
:func:`repro.sim.plan.plan_cache_stats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.perf import PERF


class ResultCache:
    """Thread-safe bounded LRU of job-result envelopes."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached envelope for ``key``, or ``None`` (counted as a
        miss — call only when a hit would actually be served)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                PERF.incr("service.cache_hits")
                return entry
            self._misses += 1
            PERF.incr("service.cache_misses")
            return None

    def put(self, key: str, envelope: Dict[str, Any]) -> None:
        with self._lock:
            self._entries[key] = envelope
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                PERF.incr("service.cache_evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry; cumulative statistics survive."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
            }
