"""Job specs, states and content-addressed keys for the verification service.

A job is ``(kind, design, params, priority)``:

- ``kind`` is one of :data:`JOB_KINDS` — ``lint`` (static desync-safety
  analysis), ``estimate`` (the Section 5.2 buffer-size loop), ``verify``
  (a "signal never present" obligation on the explicit, symbolic or
  bounded backend), ``prove`` (the static flow-equivalence prover of
  :mod:`repro.prove`, returning a ``prove-cert-v1`` certificate) and
  ``soak`` (seeded fault injection co-simulated against the zero-fault
  reference);
- ``design`` names what to check: a constructor in :mod:`repro.designs`
  (``"producer_consumer"``), a constructor with arguments
  (``{"name": "pipeline", "args": {"stages": 4}}``) or an inline program
  in the canonical serialized form of :mod:`repro.lang.serializer`
  (``{"program": {...}}``);
- ``params`` is a JSON dict of kind-specific knobs (see
  :mod:`repro.service.runner`);
- ``priority`` orders the queue — higher runs earlier, FIFO within a
  priority band.  It does **not** enter the job key: priority changes
  scheduling, never the result.

Content addressing: :func:`design_key` hashes the *resolved program's*
canonical serialization (identity and source spans ignored — the same
recipe :func:`repro.sim.plan.component_key` uses per component), and
:func:`job_key` extends that with kind and params.  Two submissions of
structurally equal designs with equal parameters therefore share one key,
which is what makes the result cache and in-flight coalescing sound.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, NamedTuple, Optional, Tuple

JOB_KINDS = ("lint", "estimate", "verify", "prove", "soak")

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (PENDING, RUNNING, DONE, FAILED, CANCELLED)

#: states a job can never leave
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class JobSpec(NamedTuple):
    """One verification job, as submitted."""

    kind: str
    design: Any
    params: Dict[str, Any]
    priority: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "design": self.design,
            "params": dict(self.params),
            "priority": self.priority,
        }


def spec_from_dict(d: Dict[str, Any]) -> JobSpec:
    """Validate and normalize a job dict into a :class:`JobSpec`."""
    if not isinstance(d, dict):
        raise ValueError("job spec must be a dict, not {!r}".format(type(d).__name__))
    kind = d.get("kind")
    if kind not in JOB_KINDS:
        raise ValueError(
            "unknown job kind {!r}: want one of {}".format(kind, "/".join(JOB_KINDS))
        )
    design = d.get("design")
    if design is None:
        raise ValueError("job spec needs a design")
    params = d.get("params") or {}
    if not isinstance(params, dict):
        raise ValueError("job params must be a dict")
    priority = int(d.get("priority", 0))
    return JobSpec(kind, design, params, priority)


def canonical_json(obj: Any) -> str:
    """The one serialization everything content-addressed hashes and
    digests: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- design resolution --------------------------------------------------------

# bounded per-process memo: resolving a design parses/constructs an AST,
# and the same corpus entries recur across thousands of jobs
_MEMO_CAPACITY = 256
_design_memo: Dict[str, Any] = {}


def resolve_program(design: Any):
    """Materialize a job's ``design`` field into a :class:`Program`."""
    from repro.lang.ast import Component, Program

    memo_key = canonical_json(design)
    cached = _design_memo.get(memo_key)
    if cached is not None:
        return cached

    if isinstance(design, str):
        name, args = design, {}
    elif isinstance(design, dict) and "program" in design:
        from repro.lang.serializer import program_from_dict

        program = program_from_dict(design["program"])
        return _memoize(memo_key, program)
    elif isinstance(design, dict) and "name" in design:
        name = design["name"]
        args = design.get("args") or {}
        if not isinstance(args, dict):
            raise ValueError("design args must be a dict")
    else:
        raise ValueError("bad design {!r}: want a corpus name, "
                         "{{'name':..., 'args':...}} or {{'program': ...}}"
                         .format(design))

    from repro import designs

    factory = getattr(designs, name, None)
    if factory is None or name.startswith("_") or not callable(factory):
        raise ValueError("unknown design {!r} (no such constructor in "
                         "repro.designs)".format(name))
    built = factory(**args)
    if isinstance(built, Component):
        built = Program(built.name, [built])
    if not isinstance(built, Program):
        raise ValueError("design {!r} did not build a Program".format(name))
    return _memoize(memo_key, built)


def _memoize(key: str, program):
    if len(_design_memo) >= _MEMO_CAPACITY:
        _design_memo.clear()
    _design_memo[key] = program
    return program


def design_key(design: Any) -> str:
    """Content hash of the resolved design: equal for structurally equal
    programs regardless of how the spec named them."""
    from repro.lang.serializer import program_to_dict

    program = resolve_program(design)
    return _sha256(canonical_json(program_to_dict(program)))


def job_key(spec: JobSpec) -> str:
    """The content address results are cached under: design content plus
    kind plus parameters.  Priority is deliberately excluded."""
    payload = {
        "kind": spec.kind,
        "design": design_key(spec.design),
        "params": spec.params,
    }
    return _sha256(canonical_json(payload))


def result_digest(result: Any) -> str:
    """Digest of a job's result payload; the byte-identity benchmarks and
    the smoke gate compare these across worker counts."""
    return _sha256(canonical_json(result))
