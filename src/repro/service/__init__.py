"""Verification-as-a-service: a persistent job platform for design checking.

Every expensive pipeline this repo owns — static lint (:mod:`repro.lint`),
Section 5.2 buffer estimation (:mod:`repro.desync.estimator`), explicit /
symbolic / bounded model checking (:mod:`repro.mc`) and fault soaks
(:mod:`repro.faults`) — used to be a one-shot CLI invocation.  This
package turns them into *jobs* on a long-lived scheduler so that a design
shop can push thousands of checks per commit and get the throughput the
perf layers bought:

- :mod:`repro.service.jobs` — job specs, states and the content-addressed
  job key (a design is hashed by its canonical serialized *content*, so
  two structurally equal designs share one key);
- :mod:`repro.service.runner` — the deterministic per-job executor, a
  module-level function that also runs inside pool workers;
- :mod:`repro.service.cache` — the thread-safe LRU result cache keyed by
  job key; resubmitted designs are near-free and the hit/miss/eviction
  counters are exported through :data:`repro.perf.PERF`;
- :mod:`repro.service.scheduler` — priority queues, job states,
  cancellation, in-flight coalescing and backfill over a persistent
  worker pool (generalizing :mod:`repro.perf.sweep` from
  one-grid-one-pool to a long-lived service);
- :mod:`repro.service.server` / :mod:`repro.service.client` — a
  line-delimited JSON socket API (``repro serve`` / ``repro submit``)
  with streaming progress events;
- :mod:`repro.service.smoke` — the ``make serve-smoke`` gate: a real
  server, a mixed batch, byte-identity vs sequential execution.

Determinism contract: a job's ``result`` payload depends only on its
spec, never on worker count, scheduling order or cache state, so the
scheduler is free to reorder and shard.  Experiment A12 pushes a
10k-mixed-job batch through 1/2/4 workers and asserts byte-identical
digests against in-process sequential execution.
"""

from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_KINDS,
    JOB_STATES,
    PENDING,
    RUNNING,
    JobSpec,
    canonical_json,
    design_key,
    job_key,
    resolve_program,
    result_digest,
)
from repro.service.cache import ResultCache
from repro.service.runner import execute
from repro.service.scheduler import JobRecord, Scheduler
from repro.service.server import ServiceServer
from repro.service.client import ServiceClient

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "JOB_STATES",
    "PENDING",
    "RUNNING",
    "JobSpec",
    "JobRecord",
    "ResultCache",
    "Scheduler",
    "ServiceClient",
    "ServiceServer",
    "canonical_json",
    "design_key",
    "execute",
    "job_key",
    "resolve_program",
    "result_digest",
]
