"""Client for the verification service's line-JSON socket API.

Thin by design: every method is one request line and one (or, for
:meth:`watch`, many) response lines, so the protocol documented in
:mod:`repro.service.server` stays the source of truth.  Used by the
``repro submit`` CLI, the smoke gate and the tests.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Callable, Dict, Iterable, List, Optional


class ServiceError(RuntimeError):
    """The server answered ``ok: false``."""


class ServiceClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- protocol -----------------------------------------------------------

    def _send(self, payload: Dict[str, Any]) -> None:
        self._sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))

    def _recv(self) -> Dict[str, Any]:
        line = self._rfile.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One op, one reply; raises :class:`ServiceError` on ``ok: false``."""
        payload = {"op": op}
        payload.update(fields)
        self._send(payload)
        reply = self._recv()
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "request failed"))
        return reply

    # -- convenience --------------------------------------------------------

    def ping(self) -> str:
        return self.request("ping")["service"]

    def submit(self, jobs: Iterable[Dict[str, Any]]) -> List[str]:
        return self.request("submit", jobs=list(jobs))["ids"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("status", id=job_id)["job"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """Job summary plus result envelope (``envelope`` may be ``None``
        while the job is still in flight)."""
        return self.request("result", id=job_id)

    def list(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        fields = {} if state is None else {"state": state}
        return self.request("list", **fields)["jobs"]

    def cancel(self, job_id: str) -> bool:
        return self.request("cancel", id=job_id)["cancelled"]

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def wait(
        self,
        job_ids: Optional[Iterable[str]] = None,
        timeout: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        fields: Dict[str, Any] = {}
        if job_ids is not None:
            fields["ids"] = list(job_ids)
        if timeout is not None:
            fields["timeout"] = timeout
        reply = self.request("wait", **fields)
        if not reply["finished"]:
            raise ServiceError("wait timed out")
        return reply["jobs"]

    def watch(
        self,
        job_ids: Optional[Iterable[str]] = None,
        callback: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> List[Dict[str, Any]]:
        """Stream progress events until every watched job is terminal;
        returns the events (after feeding each to ``callback``)."""
        fields: Dict[str, Any] = {}
        if job_ids is not None:
            fields["ids"] = list(job_ids)
        payload = {"op": "watch"}
        payload.update(fields)
        self._send(payload)
        events = []
        while True:
            reply = self._recv()
            if not reply.get("ok"):
                raise ServiceError(reply.get("error", "watch failed"))
            if reply.get("done"):
                return events
            events.append(reply)
            if callback is not None:
                callback(reply)

    def shutdown(self) -> None:
        self.request("shutdown")
