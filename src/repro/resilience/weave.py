"""One-call hardening of a built GALS network.

:func:`harden` applies the whole resilience stack —
:class:`~repro.resilience.channel.ReliableChannel` wrappers on the
channels, a :class:`~repro.resilience.supervisor.Supervisor` on the nodes
— according to a single picklable :class:`RecoveryConfig`, so soak
harnesses and sweep workers can ship the configuration across process
boundaries.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

from repro.resilience.channel import ReliableChannel, ReliableConfig, make_reliable
from repro.resilience.supervisor import RestartPolicy, Supervisor, supervise


class RecoveryConfig(NamedTuple):
    """Everything :func:`harden` needs; a pure value, pickles cleanly."""

    channel: ReliableConfig = ReliableConfig()
    watchdog: float = 2.5
    checkpoint_interval: float = 3.0
    policy: RestartPolicy = RestartPolicy()
    signals: Optional[Tuple[str, ...]] = None  # None = every channel
    nodes: Optional[Tuple[str, ...]] = None    # None = every node
    reliable: bool = True
    supervised: bool = True

    def validate(self) -> "RecoveryConfig":
        self.channel.validate()
        self.policy.validate()
        if self.watchdog <= 0:
            raise ValueError("watchdog timeout must be positive")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        return self


class Hardened(NamedTuple):
    """What :func:`harden` installed."""

    channels: Tuple[ReliableChannel, ...]
    supervisor: Optional[Supervisor]


def harden(network, config: RecoveryConfig = RecoveryConfig()) -> Hardened:
    """Install reliable channels and a supervisor per ``config``."""
    config.validate()
    channels: Tuple[ReliableChannel, ...] = ()
    if config.reliable:
        channels = tuple(
            make_reliable(network, config.channel, signals=config.signals)
        )
    sup = None
    if config.supervised:
        sup = supervise(
            network,
            watchdog=config.watchdog,
            checkpoint_interval=config.checkpoint_interval,
            policy=config.policy,
            nodes=config.nodes,
        )
    return Hardened(channels, sup)
