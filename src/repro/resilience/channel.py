"""Reliable channels: exactly-once delivery over a faulty crossing.

:class:`ReliableChannel` wraps a (possibly fault-injected)
:class:`~repro.gals.network.AsyncChannel` with a sequence-numbered
ack/retransmit protocol — the software analogue of the paper's Section 5
"observe the FIFO status, then adapt" loop, pushed one level down: instead
of adapting rates, the wrapper repairs the stream itself.

Every pushed value travels as a :class:`Frame` carrying a sequence number
and the sender's *watermark* (the lowest sequence number still
unsettled).  The receiver side delivers frames strictly in order,
discards duplicates, buffers out-of-order arrivals in a bounded reorder
window, and acknowledges cumulatively (plus selective acks for buffered
frames).  The sender retransmits unacknowledged frames after a
configurable timeout with exponential backoff, up to a retry budget;
a frame that exhausts its budget is *abandoned* — the watermark advances
past it, the receiver skips the gap, and the loss is counted instead of
stalling the stream forever (graceful degradation to counted loss).

Both endpoints live in one object because a channel in this simulator is
one object: the sender half runs inside :meth:`ReliableChannel.push`, the
receiver half inside :meth:`available`/:meth:`pop` — each first *pumps*
the underlying wire, so protocol progress happens exactly at the instants
the surrounding network touches the channel, keeping runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.gals.network import AsyncChannel


class Frame(NamedTuple):
    """One protocol message on the wire.

    ``seq < 0`` marks a pure watermark carrier (no payload): it is sent
    when abandoning a frame so the receiver can skip the gap promptly
    even if no further data frame follows.
    """

    seq: int
    value: object
    watermark: int
    born: float  # original push time, for end-to-end latency accounting


class ReliableConfig(NamedTuple):
    """Tuning knobs of the ack/retransmit protocol."""

    timeout: float = 1.5       # initial retransmit timeout (RTO)
    backoff: float = 2.0       # RTO multiplier per attempt
    max_retries: int = 8       # retransmissions per frame before abandoning
    window: int = 32           # receiver reorder-buffer capacity
    ack_latency: float = 0.0   # transport delay of the ack path

    def validate(self) -> "ReliableConfig":
        if self.timeout <= 0:
            raise ValueError("retransmit timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.window < 1:
            raise ValueError("reorder window must be >= 1")
        if self.ack_latency < 0:
            raise ValueError("ack latency must be >= 0")
        return self


class ReliableChannel(AsyncChannel):
    """Protocol wrapper delivering a wire's stream exactly once, in order.

    The inherited ``items`` deque is the *delivery queue*: frames the
    receiver has settled, in sequence order, ready for the consumer.
    ``available``/``pop``/``mean_latency`` therefore behave exactly like a
    plain channel — the surrounding :class:`~repro.gals.network.AsyncNetwork`
    needs no changes beyond swapping the channel object in.
    """

    # pending-frame record indices
    _VALUE, _ATTEMPTS, _RETRY_AT, _BORN = range(4)

    def __init__(self, wire: AsyncChannel, config: ReliableConfig = ReliableConfig()):
        self.wire = wire
        inherited_injector = wire.injector
        super().__init__(wire.name, capacity=None, policy="unbounded", latency=0.0)
        self.injector = inherited_injector  # super().__init__ nulled it
        self.policy = wire.policy  # backpressure masking follows the wire
        self.config = config.validate()
        # sender
        self._next_seq = 0
        self._pending: Dict[int, list] = {}  # seq -> [value, attempts, retry_at, born]
        self._watermark = 0
        # receiver
        self._expected = 0
        self._rbuf: Dict[int, Tuple[object, float]] = {}  # seq -> (value, born)
        self._acks: deque = deque()  # (visible_at, cumulative, sacks)
        # counters
        self.frames_sent = 0
        self.retransmits = 0
        self.acks_sent = 0
        self.dup_frames = 0
        self.corrupt_frames = 0
        self.abandoned = 0
        self.skipped_gaps = 0
        self.window_drops = 0
        self.deferred = 0

    # the injector lives on the wire so weaving order does not matter:
    # make_reliable before or after weave_faults yields the same network
    @property
    def injector(self):
        return self.wire.injector

    @injector.setter
    def injector(self, value) -> None:
        self.wire.injector = value

    def full(self) -> bool:
        return self.wire.full()

    def __len__(self) -> int:
        # occupancy as seen by rate controllers: everything not yet handed
        # to the consumer, wherever it currently sits
        return len(self.items) + len(self.wire.items) + len(self._rbuf)

    # -- sender half --------------------------------------------------------

    def push(self, value, time: float) -> bool:
        self._pump(time)
        seq = self._next_seq
        self._next_seq += 1
        self._pending[seq] = [value, 0, time + self.config.timeout, time]
        self._transmit(seq, value, time, time)
        return True

    def _transmit(self, seq: int, value, born: float, time: float) -> bool:
        """Put one frame on the wire; False when deferred (wire full)."""
        if self.wire.full():
            self.deferred += 1
            return False
        self.frames_sent += 1
        self.wire.push(Frame(seq, value, self._watermark, born), time)
        return True

    def _refresh_watermark(self) -> None:
        self._watermark = min(self._pending) if self._pending else self._next_seq

    # -- receiver half ------------------------------------------------------

    def _deliver(self, value, born: float, time: float) -> None:
        self.items.append((time, value, born, False))
        self.peak = max(self.peak, len(self.items))

    def _drain_rbuf(self, time: float) -> None:
        while self._expected in self._rbuf:
            value, born = self._rbuf.pop(self._expected)
            self._deliver(value, born, time)
            self._expected += 1

    def _advance_watermark(self, watermark: int, time: float) -> None:
        """Skip abandoned gaps: never wait for a seq the sender gave up on."""
        while self._expected < watermark:
            if self._expected in self._rbuf:
                value, born = self._rbuf.pop(self._expected)
                self._deliver(value, born, time)
            else:
                self.skipped_gaps += 1
            self._expected += 1
        self._drain_rbuf(time)

    # -- the pump -----------------------------------------------------------

    def _pump(self, time: float) -> None:
        """Advance both protocol halves to ``time``."""
        cfg = self.config
        got_frame = False
        while self.wire.available(time):
            obj = self.wire.pop(time)
            got_frame = True
            if not isinstance(obj, Frame):
                # corruption mangles the frame beyond recognition; the
                # sender's timeout will retransmit the original
                self.corrupt_frames += 1
                continue
            self._advance_watermark(obj.watermark, time)
            if obj.seq < 0:
                continue  # pure watermark carrier
            if obj.seq < self._expected or obj.seq in self._rbuf:
                self.dup_frames += 1
            elif obj.seq == self._expected:
                self._deliver(obj.value, obj.born, time)
                self._expected += 1
                self._drain_rbuf(time)
            elif len(self._rbuf) < cfg.window:
                self._rbuf[obj.seq] = (obj.value, obj.born)
            else:
                self.window_drops += 1  # past the window; retransmitted later
        if got_frame:
            self._acks.append(
                (time + cfg.ack_latency, self._expected, tuple(sorted(self._rbuf)))
            )
            self.acks_sent += 1
        while self._acks and self._acks[0][0] <= time:
            _, cumulative, sacks = self._acks.popleft()
            for seq in [
                s for s in self._pending if s < cumulative or s in sacks
            ]:
                del self._pending[seq]
        self._refresh_watermark()
        abandoned_before = self.abandoned
        for seq in sorted(self._pending):
            rec = self._pending[seq]
            if rec[self._RETRY_AT] > time:
                continue
            if rec[self._ATTEMPTS] >= cfg.max_retries:
                del self._pending[seq]
                self.abandoned += 1
                continue
            if self._transmit(seq, rec[self._VALUE], rec[self._BORN], time):
                rec[self._ATTEMPTS] += 1
                self.retransmits += 1
                rec[self._RETRY_AT] = time + cfg.timeout * (
                    cfg.backoff ** rec[self._ATTEMPTS]
                )
            else:
                rec[self._RETRY_AT] = time + cfg.timeout
        if self.abandoned > abandoned_before:
            self._refresh_watermark()
            # tell the receiver to skip the gap even if no data follows
            self._transmit(-1, None, time, time)

    # -- consumer interface -------------------------------------------------

    def available(self, time: float) -> bool:
        self._pump(time)
        return super().available(time)

    def pop(self, time: Optional[float] = None):
        if time is not None:
            self._pump(time)
        return super().pop(time)

    def protocol_stats(self) -> Dict[str, int]:
        return {
            "frames": self.frames_sent,
            "retransmits": self.retransmits,
            "acks": self.acks_sent,
            "dup_frames": self.dup_frames,
            "corrupt_frames": self.corrupt_frames,
            "abandoned": self.abandoned,
            "skipped_gaps": self.skipped_gaps,
            "window_drops": self.window_drops,
            "deferred": self.deferred,
            "unacked": len(self._pending),
        }


def make_reliable(
    network,
    config: ReliableConfig = ReliableConfig(),
    signals=None,
) -> List[ReliableChannel]:
    """Swap every matching channel of a built network for a reliable one.

    ``signals`` restricts the upgrade to the named shared signals (or
    full channel names); ``None`` upgrades every channel.  Composes with
    :func:`repro.faults.inject.weave_faults` in either order — the fault
    injector always attaches to the underlying wire.
    """
    wrapped: List[ReliableChannel] = []
    for (sig, consumer), ch in sorted(network.channels.items()):
        if isinstance(ch, ReliableChannel):
            continue
        if signals is not None and sig not in signals and ch.name not in signals:
            continue
        rc = ReliableChannel(ch, config)
        network.channels[(sig, consumer)] = rc
        for links in (network._out_links, network._in_links):
            for pairs in links.values():
                for i, (lsig, lch) in enumerate(pairs):
                    if lch is ch:
                        pairs[i] = (lsig, rc)
        wrapped.append(rc)
    return wrapped
