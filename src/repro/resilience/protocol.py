"""The ack/retransmit wrapper as a Signal process, for verification.

:class:`~repro.resilience.channel.ReliableChannel` is an operational
artifact; this module is its *model*: a small alternating-bit protocol
expressed as a synchronous Signal component, with an ``alarm`` output that
fires exactly when a duplicate frame slips through to the application.
The Section 5.2 obligation — "no alarm signal is raised" — then becomes a
safety property both model-checking backends can discharge:

- the correct protocol (receiver accepts a frame only when its bit
  matches the expected bit) satisfies ``never alarm``;
- the ``dedup=False`` mutant (receiver accepts every delivery, i.e. a raw
  retransmitting channel without sequence numbers) is refuted by a
  two-step counterexample: deliver the same frame twice.

The environment is fully adversarial: at every tick it chooses freely
whether a frame arrives (``deliver`` — covering loss, duplication and
retransmission) and whether the ack channel works (``ack_ok``), so the
proof covers every drop/duplicate/reorder interleaving of a one-frame
window.  State space: four boolean registers, 16 states — small enough
for the explicit backend and boolean-only, as the symbolic backend
requires, so the two can cross-check each other
(:func:`repro.mc.harness.cross_check_never_present`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.lang.ast import Component, Const, pre
from repro.lang.builder import ComponentBuilder
from repro.lang.types import BOOL, EVENT


def ack_protocol(dedup: bool = True) -> Component:
    """The alternating-bit ack protocol; ``dedup=False`` is the mutant."""
    b = ComponentBuilder("ABP" if dedup else "ABP_nodedup")
    tick = b.input("tick", EVENT)
    deliver = b.input("deliver", BOOL)   # a frame (re)arrives this tick
    ack_ok = b.input("ack_ok", BOOL)     # the ack path works this tick
    alarm = b.output("alarm", BOOL)      # a duplicate reached the application

    s = b.local("s", BOOL)      # sender: bit of the in-flight frame
    r = b.local("r", BOOL)      # receiver: next expected bit
    seen = b.local("seen", BOOL)  # receiver accepted at least one frame
    last = b.local("last", BOOL)  # bit of the last accepted frame

    sp = b.let("sp", BOOL, pre(False, s))
    rp = b.let("rp", BOOL, pre(False, r))
    seenp = b.let("seenp", BOOL, pre(False, seen))
    lastp = b.let("lastp", BOOL, pre(False, last))

    # the arriving frame carries the sender's current bit `sp`; the
    # receiver accepts it only when that bit is the one it expects
    if dedup:
        accept = b.let("accept", BOOL, deliver & ~(sp ^ rp))
    else:
        accept = b.let("accept", BOOL, deliver)
    b.define(r, rp ^ accept)

    # the receiver acks the bit of its last accepted frame (= ~r); the
    # sender advances when that ack matches its current bit
    advance = b.let("advance", BOOL, ack_ok & ~(~r ^ sp))
    b.define(s, sp ^ advance)

    b.define(seen, seenp | accept)
    b.define(last, sp.when(accept).default(lastp))

    # duplicate delivery: accepting a frame whose bit equals the bit of
    # an already-accepted frame
    dup = b.let("dup", BOOL, accept & seenp & ~(sp ^ lastp))
    b.define(alarm, Const(True).when(dup))

    b.sync(tick, deliver, ack_ok, s, r, seen, last)
    return b.build()


def ack_alphabet() -> List[Dict[str, object]]:
    """The adversarial environment: idle, or any (deliver, ack_ok) pair."""
    letters: List[Dict[str, object]] = [{}]
    for deliver in (False, True):
        for ack in (False, True):
            letters.append({"tick": True, "deliver": deliver, "ack_ok": ack})
    return letters


def verify_ack_protocol(dedup: bool = True):
    """Cross-check ``never alarm`` on both backends; returns the report."""
    from repro.mc.harness import cross_check_never_present

    return cross_check_never_present(
        ack_protocol(dedup), "alarm", alphabet=ack_alphabet()
    )
