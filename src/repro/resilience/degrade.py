"""Graceful degradation: channel pressure drives service-level switches.

:class:`PressureMonitor` closes the loop between the reliability layer
and the Section 5.2 rate controller.  Its pressure sample is the sum of
channel occupancy (including frames still on the wire and parked in the
reorder buffer) and the *deltas* of loss-shaped counters since the last
sample — wire losses, retransmissions, abandoned frames — so sustained
retransmit storms degrade the producer even while queues stay short.

Degradation is deliberately sluggish: the controller observes the
*minimum* pressure over the last ``sustain`` samples, so a single spike
never switches levels, but recovery (which needs pressure to fall) acts
on the newest sample as soon as the window agrees.  Every switch is
recorded as a structured ``degrade``/``recover``
:class:`~repro.resilience.supervisor.AlarmEvent` on the given sink.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Optional

from repro.resilience.supervisor import AlarmEvent


class PressureMonitor:
    """Feeds sustained channel pressure into a RateController."""

    def __init__(self, controller, channels, alarms: Optional[List] = None,
                 sustain: int = 2):
        if sustain < 1:
            raise ValueError("sustain must be >= 1")
        self.controller = controller
        self.channels = list(channels) if isinstance(channels, (list, tuple)) \
            else [channels]
        self.alarms = alarms if alarms is not None else []
        # pre-seeded with a zero-pressure baseline so a spike on the very
        # first sample cannot degrade before `sustain` samples agree
        self._window: deque = deque([0], maxlen=sustain)
        self._baseline = {
            id(ch): self._wear(ch) for ch in self.channels
        }
        self.samples = 0

    @staticmethod
    def _wear(ch) -> int:
        """Cumulative loss-shaped work the channel has absorbed."""
        stats = ch.protocol_stats()
        return ch.losses + stats.get("retransmits", 0) + stats.get("abandoned", 0)

    def pressure(self) -> int:
        total = 0
        for ch in self.channels:
            total += len(ch)
            wear = self._wear(ch)
            total += wear - self._baseline[id(ch)]
            self._baseline[id(ch)] = wear
        return total

    def sample(self, time: float = 0.0):
        """One observation; returns the (possibly switched) current level."""
        self.samples += 1
        self._window.append(self.pressure())
        ctl = self.controller
        before = ctl.index
        ctl.observe(min(self._window), time)
        if ctl.index != before:
            kind = "degrade" if ctl.index > before else "recover"
            self.alarms.append(
                AlarmEvent(
                    time, kind,
                    ",".join(ch.name for ch in self.channels),
                    "{} -> {}".format(
                        ctl.levels[before].name, ctl.current.name
                    ),
                )
            )
        return ctl.current

    def schedule(self, phase: float = 0.0) -> Iterator[float]:
        """An adaptive activation schedule driven by this monitor."""
        t = phase
        while True:
            self.sample(t)
            yield t
            t += self.controller.current.period
