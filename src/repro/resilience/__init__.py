"""Recovery and supervision for GALS deployments.

PR 2 made faults first-class (:mod:`repro.faults`); this package makes
deployments *survive* them, and closes the loop with verification:

- :mod:`repro.resilience.channel` — :class:`ReliableChannel`:
  sequence-numbered frames, receiver-side dedup/reorder windows,
  ack/retransmit with timeout + exponential backoff + retry budget;
  exactly-once delivery over a lossy/duplicating/reordering wire,
  degrading to counted loss when the budget runs out;
- :mod:`repro.resilience.supervisor` — periodic
  :class:`~repro.sim.engine.Reactor` checkpoints, per-node watchdogs and
  a bounded-restart :class:`Supervisor` replaying logged inputs to
  reconstruct pre-crash state;
- :mod:`repro.resilience.degrade` — :class:`PressureMonitor`: sustained
  overflow/retransmit pressure escalated into
  :class:`~repro.gals.service.RateController` level switches with
  structured alarms;
- :mod:`repro.resilience.protocol` — the ack protocol as a Signal
  process, model-checked for "no alarm ever raised" on both the
  explicit and the symbolic backend;
- :mod:`repro.resilience.weave` — :func:`harden`: one-call installation
  of the whole stack on a built network.

The closing claim, exercised by :func:`repro.faults.soak.recovery_soak`:
under drops, duplicates, reordering *and* node crashes, the hardened run
is flow-equivalent to the zero-fault reference.
"""

from repro.resilience.channel import (
    Frame,
    ReliableChannel,
    ReliableConfig,
    make_reliable,
)
from repro.resilience.supervisor import (
    AlarmEvent,
    RestartPolicy,
    Supervisor,
    supervise,
)
from repro.resilience.degrade import PressureMonitor
from repro.resilience.protocol import (
    ack_alphabet,
    ack_protocol,
    verify_ack_protocol,
)
from repro.resilience.weave import Hardened, RecoveryConfig, harden

__all__ = [
    "Frame",
    "ReliableChannel",
    "ReliableConfig",
    "make_reliable",
    "AlarmEvent",
    "RestartPolicy",
    "Supervisor",
    "supervise",
    "PressureMonitor",
    "ack_alphabet",
    "ack_protocol",
    "verify_ack_protocol",
    "Hardened",
    "RecoveryConfig",
    "harden",
]
