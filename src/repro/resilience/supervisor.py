"""Checkpoint/restart supervision of GALS nodes.

A :class:`Supervisor` woven into an
:class:`~repro.gals.network.AsyncNetwork` watches every supervised node
with a per-node watchdog: a node silent for longer than the watchdog
timeout is presumed to have crashed and restarted.  Recovery restores the
node's last :class:`~repro.sim.engine.Reactor` checkpoint and replays the
logged inputs of every reaction since — reconstructing the exact
pre-crash state, because a reactor is a deterministic function of
(state, inputs).  Replay outputs are suppressed: the channels already
carried them the first time.

Checkpoints are taken at commit points — right after a reaction, every
``checkpoint_interval`` time units — and truncate the replay log, bounding
recovery work.  The :class:`RestartPolicy` bounds restarts per node
(``max_restarts``) and enforces a minimum spacing between them; a denied
restart leaves the node running from whatever state the crash left it in
and raises a ``restart-denied`` alarm, so the divergence is attributable.

A restart triggered by a *false positive* (a long but benign activation
gap) is harmless by construction: checkpoint + full log replay rebuilds
the node's current state.

All observations land on :attr:`Supervisor.alarms` as structured
:class:`AlarmEvent` records and surface on the run's
:class:`~repro.gals.network.NetworkTrace`.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set


class AlarmEvent(NamedTuple):
    """One structured alarm on the trace."""

    time: float
    kind: str     # "watchdog" | "restart" | "restart-denied" | "degrade" | "recover"
    subject: str  # node or channel name
    detail: str = ""


class RestartPolicy(NamedTuple):
    """Bounded-restart policy of a supervisor."""

    max_restarts: int = 3
    min_spacing: float = 0.0  # minimum time between restarts of one node

    def validate(self) -> "RestartPolicy":
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.min_spacing < 0:
            raise ValueError("min_spacing must be >= 0")
        return self


class _NodeState:
    __slots__ = (
        "last_fire", "ckpt_state", "ckpt_instant", "ckpt_time", "log",
        "restarts", "last_restart",
    )

    def __init__(self, reactor, time: float):
        self.last_fire = time
        self.ckpt_state = reactor.state()
        self.ckpt_instant = reactor.instant_index
        self.ckpt_time = time
        self.log: List[Dict[str, object]] = []
        self.restarts = 0
        self.last_restart: Optional[float] = None


class Supervisor:
    """Per-node watchdogs, periodic checkpoints, bounded restarts."""

    def __init__(
        self,
        watchdog: float,
        checkpoint_interval: float = 3.0,
        policy: RestartPolicy = RestartPolicy(),
        nodes=None,
    ):
        if watchdog <= 0:
            raise ValueError("watchdog timeout must be positive")
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.watchdog = watchdog
        self.checkpoint_interval = checkpoint_interval
        self.policy = policy.validate()
        self.nodes: Optional[Set[str]] = set(nodes) if nodes is not None else None
        self.alarms: List[AlarmEvent] = []
        self.checkpoints = 0
        self.restarts = 0
        self.restart_denied = 0
        self.replayed = 0
        self.recovery_gaps: List[float] = []
        self._state: Dict[str, _NodeState] = {}

    def _supervised(self, name: str) -> bool:
        return self.nodes is None or name in self.nodes

    def before_fire(self, name: str, reactor, time: float) -> None:
        """Watchdog check; restores checkpoint + replays log on expiry."""
        if not self._supervised(name):
            return
        st = self._state.get(name)
        if st is None:
            self._state[name] = _NodeState(reactor, time)
            self.checkpoints += 1
            return
        gap = time - st.last_fire
        if gap <= self.watchdog:
            return
        self.alarms.append(
            AlarmEvent(time, "watchdog", name, "silent for {:.6g}".format(gap))
        )
        denied = st.restarts >= self.policy.max_restarts or (
            st.last_restart is not None
            and time - st.last_restart < self.policy.min_spacing
        )
        if denied:
            self.restart_denied += 1
            self.alarms.append(
                AlarmEvent(
                    time, "restart-denied", name,
                    "budget exhausted after {} restarts".format(st.restarts),
                )
            )
            return
        st.restarts += 1
        st.last_restart = time
        self.restarts += 1
        reactor.reset()
        reactor.set_state(st.ckpt_state)
        reactor.instant_index = st.ckpt_instant
        for inputs in st.log:
            reactor.react(inputs)  # outputs suppressed: already dispatched
        self.replayed += len(st.log)
        self.recovery_gaps.append(gap)
        self.alarms.append(
            AlarmEvent(
                time, "restart", name,
                "restored checkpoint t={:.6g}, replayed {} reactions".format(
                    st.ckpt_time, len(st.log)
                ),
            )
        )

    def after_fire(self, name: str, reactor, time: float, inputs) -> None:
        """Log the reaction; checkpoint at commit points."""
        if not self._supervised(name):
            return
        st = self._state.get(name)
        if st is None:  # pragma: no cover - before_fire always precedes
            self._state[name] = st = _NodeState(reactor, time)
            self.checkpoints += 1
        st.last_fire = time
        st.log.append(dict(inputs))
        if time - st.ckpt_time >= self.checkpoint_interval:
            st.ckpt_state = reactor.state()
            st.ckpt_instant = reactor.instant_index
            st.ckpt_time = time
            st.log = []
            self.checkpoints += 1

    def alarm_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.alarms:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def metrics(self) -> Dict[str, object]:
        return {
            "supervised": len(self._state),
            "checkpoints": self.checkpoints,
            "restarts": self.restarts,
            "restart_denied": self.restart_denied,
            "replayed": self.replayed,
            "max_recovery_gap": round(max(self.recovery_gaps), 9)
            if self.recovery_gaps else 0.0,
        }


def supervise(
    network,
    watchdog: float,
    checkpoint_interval: float = 3.0,
    policy: RestartPolicy = RestartPolicy(),
    nodes=None,
) -> Supervisor:
    """Attach a supervisor to a built network; returns it."""
    sup = Supervisor(watchdog, checkpoint_interval, policy, nodes)
    network._supervisor = sup
    return sup
