"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

- ``check FILE``      parse, type-check, causality- and clock-check
- ``lint TARGETS``    static desync-safety analysis (rule codes SIG*/GALS*)
- ``format FILE``     pretty-print back to Signal source
- ``clocks FILE``     clock calculus report
- ``simulate FILE``   run against periodic stimuli, render the trace
- ``desync FILE``     desynchronize and print the transformed program
- ``estimate FILE``   Section 5.2 buffer-size estimation loop
- ``verify FILE``     model-check an invariant ("signal never present")
- ``faults soak``     fault-injection soak of a built-in GALS design
- ``faults plan``     dump the explicit per-channel fault schedule
- ``recover soak``    recovery soak: hardened deployment vs reference

Stimulus specs (``--stim``) are ``name:period[:phase[:value]]`` —
e.g. ``--stim tick:1 --stim data:3:1:42`` gives an event every instant
and the constant 42 every third instant starting at 1.

Example::

    python -m repro simulate design.sig --stim tick:1 -n 10 --vcd out.vcd
"""

from __future__ import annotations

import argparse
import sys

from repro.clocks import analyze_clocks
from repro.errors import ReproError
from repro.lang import (
    check_program,
    flatten_program,
    format_program,
    parse_program,
)
from repro.lang.analysis import instantaneous_cycles
from repro.sim import simulate, stimuli
from repro.sim.vcd import write_vcd


def _load(path: str):
    with open(path) as f:
        return parse_program(f.read())


def _parse_stim(specs):
    parts = []
    for spec in specs or []:
        fields = spec.split(":")
        if len(fields) < 2:
            raise SystemExit("bad --stim {!r}: want name:period[:phase[:value]]".format(spec))
        name = fields[0]
        period = int(fields[1])
        phase = int(fields[2]) if len(fields) > 2 else 0
        if len(fields) > 3:
            raw = fields[3]
            if raw in ("true", "false"):
                value = raw == "true"
            elif raw == "count":
                parts.append(
                    stimuli.periodic(name, period, values=stimuli.counter(), phase=phase)
                )
                continue
            else:
                value = int(raw)
            import itertools

            parts.append(
                stimuli.periodic(name, period, values=itertools.repeat(value), phase=phase)
            )
            continue
        parts.append(stimuli.periodic(name, period, phase=phase))
    if not parts:
        return stimuli.silence()
    return stimuli.merge(*parts)


def cmd_check(args) -> int:
    prog = _load(args.file)
    check_program(prog)
    flat = flatten_program(prog)
    cycles = instantaneous_cycles(flat)
    analysis = analyze_clocks(flat)
    print("{}: {} component(s), {} signals — types OK".format(
        prog.name, len(prog.components), len(flat.signals())))
    if cycles:
        print("CAUSALITY CYCLES: {}".format(cycles))
        return 1
    print("causality: no instantaneous cycles")
    print("clocks: {}".format(
        "input-deterministic (no oracle needed)"
        if analysis.is_input_deterministic()
        else "free clocks present: {}".format(sorted(analysis.free))
    ))
    return 0


_LINT_DESIGNS = (
    "producer_consumer",
    "producer_accumulator",
    "modular_producer_consumer",
    "boolean_producer_consumer",
    "pipeline",
    "request_response",
    "fan_out",
    "token_ring",
)


def _lint_targets(args):
    """Resolve lint targets to ``(label, Program)`` pairs.

    A target is a Signal source file, an example module (``.py`` with a
    zero-argument ``program()``), or the name of a constructor in
    :mod:`repro.designs`; ``--all-designs`` appends the canonical set.
    """
    import os

    from repro import designs
    from repro.lang.ast import Component, Program

    names = list(args.targets)
    if args.all_designs:
        names.extend(_LINT_DESIGNS)
    if not names:
        raise SystemExit("lint: no targets (give a file, a design name, "
                         "or --all-designs)")
    out = []
    for name in names:
        if name.endswith(".py") and os.path.exists(name):
            import importlib.util

            modname = "_lint_{}".format(
                os.path.basename(name)[:-3].replace("-", "_")
            )
            spec = importlib.util.spec_from_file_location(modname, name)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            factory = getattr(module, "program", None)
            if factory is None:
                raise SystemExit(
                    "lint: example {} has no program() constructor".format(name)
                )
            prog = factory()
            if isinstance(prog, Component):
                prog = Program(prog.name, [prog])
            out.append((name, prog))
        elif os.path.exists(name):
            out.append((name, _load(name)))
        elif hasattr(designs, name):
            prog = getattr(designs, name)()
            if isinstance(prog, Component):
                prog = Program(prog.name, [prog])
            out.append((name, prog))
        else:
            raise SystemExit(
                "lint: {!r} is neither a file nor a repro.designs "
                "constructor".format(name)
            )
    return out


def cmd_lint(args) -> int:
    from repro.lang import format_program
    from repro.lint import LintReport, fix_program, lint_program, parse_rates

    def split(values):
        return [p for v in values or [] for p in v.split(",") if p]

    select = split(args.select)
    ignore = split(args.ignore)
    try:
        rates = parse_rates(args.rate or [])
    except ValueError as exc:
        raise SystemExit("lint: {}".format(exc))

    diagnostics = []
    names = []
    for label, prog in _lint_targets(args):
        if args.fix:
            fixed, n = fix_program(prog)
            if n:
                if not label.endswith(".sig"):
                    raise SystemExit(
                        "lint --fix: {} is not a Signal source file".format(
                            label
                        )
                    )
                with open(label, "w") as fh:
                    fh.write(format_program(fixed) + "\n")
                print("fixed {}: {} change(s)".format(label, n))
                prog = _load(label)
        report = lint_program(
            prog,
            file=label,
            rates=rates,
            cut_channels=not args.synchronous,
            select=select,
            ignore=ignore,
        )
        diagnostics.extend(report.diagnostics)
        names.append(prog.name)
    merged = LintReport(
        names[0] if len(names) == 1 else "{} programs".format(len(names)),
        diagnostics,
    )
    if args.json:
        _emit_text(args.json, merged.to_json())
    if args.sarif:
        _emit_text(args.sarif, merged.to_sarif())
    if args.json or args.sarif:
        # digest-flag mode (the `faults soak --json` convention): the text
        # report only renders when no digest went to stdout
        if args.json != "-" and args.sarif != "-":
            print(merged.render_text())
        return 1 if merged.has_errors() else 0
    if args.format == "json":
        text = merged.to_json()
    elif args.format == "sarif":
        text = merged.to_sarif()
    else:
        text = merged.render_text()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print("wrote {}".format(args.output))
    else:
        print(text)
    return 1 if merged.has_errors() else 0


def cmd_format(args) -> int:
    print(format_program(_load(args.file)))
    return 0


def cmd_clocks(args) -> int:
    flat = flatten_program(_load(args.file))
    print(analyze_clocks(flat).render())
    return 0


def cmd_graph(args) -> int:
    from repro.lang.graph import clock_graph_dot, program_graph_dot, signal_graph_dot

    prog = _load(args.file)
    if args.view == "program":
        print(program_graph_dot(prog))
    elif args.view == "signals":
        print(signal_graph_dot(flatten_program(prog)))
    else:
        print(clock_graph_dot(flatten_program(prog)))
    return 0


def cmd_simulate(args) -> int:
    prog = _load(args.file)
    trace = simulate(prog, _parse_stim(args.stim), n=args.n)
    columns = args.signals.split(",") if args.signals else None
    print(trace.render(columns))
    if args.vcd:
        write_vcd(args.vcd, trace, component=flatten_program(prog))
        print("\nwrote {}".format(args.vcd))
    return 0


def cmd_desync(args) -> int:
    from repro.desync import desynchronize

    prog = _load(args.file)
    result = desynchronize(
        prog, capacities=args.capacity, kind=args.kind, instrument=args.instrument
    )
    print(format_program(result.program))
    print()
    for ch in result.channels:
        print("% channel {}: {} -> {} (capacity {}, read request {})".format(
            ch.signal, ch.producer, ch.consumer, ch.capacity, ch.rreq))
    return 0


def cmd_estimate(args) -> int:
    from repro.desync import estimate_buffer_sizes

    prog = _load(args.file)
    report = estimate_buffer_sizes(
        prog,
        lambda: _parse_stim(args.stim),
        horizon=args.n,
        initial=args.initial,
        kind=args.kind,
    )
    print(report.render())
    return 0 if report.converged else 1


def cmd_verify(args) -> int:
    from repro.mc import (
        bounded_never_present,
        check_never_present,
        compile_lts,
        input_alphabet,
    )
    from repro.mc.symbolic import SymbolicChecker

    prog = _load(args.file)
    flat = flatten_program(prog)
    alphabet = input_alphabet(
        flat,
        int_values=tuple(int(v) for v in args.int_values.split(",")),
        always_present=args.always or (),
        never_present=args.never_input or (),
    )
    if args.backend == "symbolic":
        chk = SymbolicChecker(flat, alphabet=alphabet)
        print("symbolic: {} reachable states, {} BDD nodes, {} iterations".format(
            chk.state_count(), chk.bdd.node_count(), chk.iterations or "-"))
        ce = chk.check_never_present(args.never)
        if ce is None:
            print("PROVEN: {!r} is never present".format(args.never))
            return 0
        print(ce.render())
        return 1
    if args.backend == "bounded":
        result = bounded_never_present(
            flat, args.never, depth=args.depth, alphabet=alphabet
        )
        print("bounded search to depth {}: {} reactions".format(
            args.depth, result.explored))
        if result.safe_up_to_bound:
            print("SAFE up to depth {}: {!r} never occurred".format(
                args.depth, args.never))
            return 0
        print(result.counterexample.render())
        return 1
    lts = compile_lts(flat, alphabet=alphabet, max_states=args.max_states)
    print("explored {} states / {} transitions".format(
        lts.num_states(), lts.num_transitions()))
    ce = check_never_present(lts, args.never)
    if ce is None:
        print("PROVEN: {!r} is never present".format(args.never))
        return 0
    print(ce.render())
    return 1


def _mc_target(target: str):
    """A Signal source path, or corpus shorthand ``name[:k=v,...]``."""
    import os

    if os.path.exists(target):
        return _load(target)
    from repro.service.jobs import resolve_program

    name, _, rest = target.partition(":")
    params = {}
    for pair in (p for p in rest.split(",") if p):
        key, eq, raw = pair.partition("=")
        if not eq:
            raise SystemExit("bad design param {!r} in {!r}".format(pair, target))
        try:
            params[key] = int(raw)
        except ValueError:
            params[key] = raw == "true" if raw in ("true", "false") else raw
    try:
        return resolve_program({"name": name, "args": params})
    except ValueError as exc:
        raise SystemExit("mc verify: {}".format(exc))


def cmd_mc(args) -> int:
    """The persistent verification store: stats, prune, clear, verify."""
    import json

    from repro.mc.store import MCStore, STORE_ENV, default_store

    store = MCStore(args.store) if args.store else default_store()
    if args.mc_command != "verify" and store is None:
        raise SystemExit(
            "mc {}: no store configured (pass --store DIR or set "
            "{})".format(args.mc_command, STORE_ENV)
        )
    if args.mc_command == "stats":
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
        return 0
    if args.mc_command == "prune":
        evicted = store.prune(args.limit)
        print("evicted {} entry(ies); {} byte(s) on disk".format(
            evicted, store.stats()["bytes"]))
        return 0
    if args.mc_command == "clear":
        print("removed {} entry(ies)".format(store.clear()))
        return 0

    # verify — the store-aware sibling of `repro verify`
    from repro.mc import compile_lts, check_never_present, input_alphabet

    prog = _mc_target(args.target)
    before = store.stats() if store is not None else None
    int_values = tuple(int(v) for v in args.int_values.split(","))
    always = args.always or ()
    never_input = args.never_input or ()
    flat = flatten_program(prog)
    if args.backend == "compose":
        from repro.mc.compose import verify_composed

        contracts = {}
        for pair in args.contract or ():
            sig, eq, cname = pair.partition("=")
            if not eq:
                raise SystemExit(
                    "bad --contract {!r}: want SIGNAL=NAME".format(pair))
            contracts[sig] = cname
        cert = verify_composed(
            prog, args.never, contracts=contracts, int_values=int_values,
            always_present=always, never_present=never_input,
            max_states=args.max_states, store=store,
        )
        print(cert.render())
        rc = 0 if cert.holds else 1
    elif args.backend == "symbolic":
        from repro.mc.symbolic import SymbolicChecker

        alphabet = input_alphabet(
            flat, int_values=int_values, always_present=always,
            never_present=never_input,
        )
        chk = SymbolicChecker(flat, alphabet=alphabet, store=store)
        ce = chk.check_never_present(args.never)
        print("symbolic: {} reachable states, {} iterations".format(
            chk.state_count(), chk.iterations))
        print("PROVEN: {!r} is never present".format(args.never)
              if ce is None else ce.render())
        rc = 0 if ce is None else 1
    elif args.backend == "bounded":
        from repro.mc import bounded_never_present

        alphabet = input_alphabet(
            flat, int_values=int_values, always_present=always,
            never_present=never_input,
        )
        res = bounded_never_present(
            flat, args.never, depth=args.depth, alphabet=alphabet)
        print("bounded to depth {}: {} reactions".format(
            args.depth, res.explored))
        print("SAFE up to depth {}".format(args.depth)
              if res.safe_up_to_bound else res.counterexample.render())
        rc = 0 if res.safe_up_to_bound else 1
    else:
        alphabet = input_alphabet(
            flat, int_values=int_values, always_present=always,
            never_present=never_input,
        )
        lts = compile_lts(
            flat, alphabet=alphabet, max_states=args.max_states, store=store)
        print("explored {} states / {} transitions{}".format(
            lts.num_states(), lts.num_transitions(),
            " [store hit]" if lts.stats.get("store") == "hit" else ""))
        ce = check_never_present(lts, args.never)
        print("PROVEN: {!r} is never present".format(args.never)
              if ce is None else ce.render())
        rc = 0 if ce is None else 1
    if store is not None:
        after = store.stats()
        print("store: {} hit(s), {} miss(es), {} put(s); {} entries".format(
            after["hits"] - before["hits"],
            after["misses"] - before["misses"],
            after["puts"] - before["puts"],
            after["entries"],
        ))
    return rc


def cmd_prove(args) -> int:
    """Static flow-equivalence prover (PROVEN / REFUTED / unknown)."""
    from repro.lint import parse_rates
    from repro.mc.store import MCStore, default_store
    from repro.prove import prove_flow_equivalence, replay_witness

    prog = _mc_target(args.target)
    try:
        rates = parse_rates(args.rate or [])
    except ValueError as exc:
        raise SystemExit("prove: {}".format(exc))
    capacities = 1
    cap_map = {}
    for spec in args.capacity or ():
        sig, eq, raw = spec.partition("=")
        try:
            if eq:
                cap_map[sig] = int(raw)
            else:
                capacities = int(spec)
        except ValueError:
            raise SystemExit(
                "prove: bad --capacity {!r}: want N or SIGNAL=N".format(spec)
            )
    if cap_map:
        if capacities != 1:
            raise SystemExit(
                "prove: give either one bare --capacity N or per-signal "
                "SIGNAL=N entries, not both"
            )
        capacities = cap_map
    backpressure = {}
    for pair in args.backpressure or ():
        comp, eq, inp = pair.partition("=")
        if not eq:
            raise SystemExit(
                "prove: bad --backpressure {!r}: want "
                "COMPONENT=INPUT".format(pair)
            )
        backpressure[comp] = inp

    store = MCStore(args.store) if args.store else default_store()
    cert = prove_flow_equivalence(
        prog,
        rates=rates,
        capacities=capacities,
        backend=args.backend,
        int_values=tuple(int(v) for v in args.int_values.split(",")),
        always=tuple(args.always or ()),
        never_input=tuple(args.never_input or ()),
        max_states=args.max_states,
        fifo=args.fifo,
        backpressure=backpressure or None,
        store=store,
    )
    if args.json:
        _emit_json(args.json, cert.to_dict())
    if args.json != "-":
        print("prove {}: {} (method {}, backend {})".format(
            cert.program, cert.verdict.upper(), cert.method, cert.backend))
        for ob in cert.obligations:
            bound = " bound={}".format(ob["bound"]) if "bound" in ob else ""
            print("  {} on {} [capacity {}]: {}{}".format(
                ob["kind"], ob["channel"], ob["capacity"], ob["status"], bound))
        if cert.reason:
            print("  reason: {}".format(cert.reason))
        if cert.witness:
            print("  witness: {} at instant {} ({} stimulus row(s))".format(
                cert.witness["event"], cert.witness["instant"],
                len(cert.witness.get("inputs", []))))
        stats = " ".join(
            "{}={}".format(k, v) for k, v in sorted(cert.stats.items())
        )
        if stats:
            print("  stats: {}".format(stats))
    if args.replay:
        if not cert.witness:
            print("nothing to replay: the certificate carries no witness")
        else:
            rep = replay_witness(prog, cert)
            print(rep.render())
            if not rep.ok:
                return 2
    return {"proven": 0, "refuted": 1}.get(cert.verdict, 2)


_FAULT_DESIGNS = {
    "prodcons": "producer_consumer",
    "prodacc": "producer_accumulator",
    "pipeline": "pipeline",
    "fanout": "fan_out",
}


def cmd_faults(args) -> int:
    from repro import designs
    from repro.faults import EstimateConfig, soak, uniform_plan, weave_faults
    from repro.gals import AsyncNetwork
    from repro.workloads import scenarios

    program = getattr(designs, _FAULT_DESIGNS[args.design])()
    plan = uniform_plan(
        seed=args.seed,
        drop=args.drop,
        duplicate=args.dup,
        reorder=args.reorder,
        window=args.window,
        jitter=args.jitter,
        corrupt=args.corrupt,
        stall=args.stall,
        stall_period=args.stall_period,
    )
    workload = scenarios.steady(
        producer_period=args.period, reader_period=args.reader_period
    )
    if args.action == "plan":
        # materialize the explicit schedule for every channel of the
        # deployed network (no simulation)
        net = AsyncNetwork.from_program(program, workload.gals_schedules())
        schedule = plan.compile()
        for (signal, _consumer), ch in sorted(net.channels.items()):
            print("channel {}:".format(ch.name))
            for i, d in enumerate(schedule.channel(ch.name, signal).prefix(args.n)):
                print(
                    "  push {:>3}: drop={} dup={} shift={} jitter={:.4f} "
                    "corrupt={}".format(
                        i, int(d.drop), d.duplicates, d.shift, d.jitter,
                        int(d.corrupt),
                    )
                )
        return 0
    estimate = None
    if args.estimate:
        if args.design != "prodcons":
            raise SystemExit(
                "--estimate drives p_act/x_rreq stimuli; only --design "
                "prodcons supports it"
            )
        estimate = EstimateConfig(horizon=args.n, hold=args.hold)
    report = soak(
        program, workload, plan, horizon=args.horizon, estimate=estimate
    )
    if args.json:
        _emit_json(args.json, {
            "design": args.design,
            "seed": args.seed,
            "horizon": args.horizon,
            "flow_equivalent": report.flow_equivalent,
            "classification": dict(sorted(report.classification.items())),
            "fault_counts": dict(sorted(report.fault_counts.items())),
        })
    if args.json != "-":
        print(report.render())
    return 0 if report.flow_equivalent else 1


def _emit_json(path: str, data) -> None:
    import json

    _emit_text(path, json.dumps(data, indent=2, sort_keys=True))


def _emit_text(path: str, text: str) -> None:
    if path == "-":
        print(text)
    else:
        with open(path, "w") as fh:
            fh.write(text + "\n")


def _parse_windows(specs, flag):
    """``NODE:START:END`` arguments -> {node: ((start, end), ...)}."""
    out = {}
    for item in specs or []:
        parts = item.split(":")
        if len(parts) != 3:
            raise SystemExit(
                "{} expects NODE:START:END, got {!r}".format(flag, item)
            )
        node, lo, hi = parts[0], float(parts[1]), float(parts[2])
        out.setdefault(node, []).append((lo, hi))
    return {node: tuple(sorted(ws)) for node, ws in out.items()}


def cmd_recover(args) -> int:
    from repro import designs
    from repro.faults import ChannelFaults, FaultPlan, NodeFaults, recovery_soak
    from repro.resilience import (
        RecoveryConfig, ReliableConfig, RestartPolicy,
    )
    from repro.workloads import scenarios

    program = getattr(designs, _FAULT_DESIGNS[args.design])()
    channel_spec = ChannelFaults(
        drop=args.drop, duplicate=args.dup, reorder=args.reorder,
        window=args.window, jitter=args.jitter, corrupt=args.corrupt,
    )
    nodes = {}
    for node, windows in _parse_windows(args.crash, "--crash").items():
        nodes[node] = NodeFaults(crash=windows)
    for node, windows in _parse_windows(args.stall, "--stall").items():
        prev = nodes.get(node, NodeFaults())
        nodes[node] = prev._replace(intervals=windows)
    plan = FaultPlan(
        seed=args.seed,
        channels={"*": channel_spec} if channel_spec.active else {},
        nodes=nodes,
    ).validate()
    if args.workload == "burst":
        workload = scenarios.single_burst(
            burst=args.burst, drain_period=args.period
        )
    else:
        workload = scenarios.steady(
            producer_period=args.period, reader_period=args.period
        )
    config = RecoveryConfig(
        channel=ReliableConfig(
            timeout=args.rto, backoff=args.rto_backoff,
            max_retries=args.retries, ack_latency=args.ack_latency,
        ),
        watchdog=args.watchdog,
        checkpoint_interval=args.checkpoint_interval,
        policy=RestartPolicy(
            max_restarts=args.max_restarts, min_spacing=args.restart_spacing
        ),
    )
    report = recovery_soak(
        program, workload, plan, config, horizon=args.horizon
    )
    if args.json:
        _emit_json(args.json, {
            "design": args.design,
            "seed": args.seed,
            "horizon": args.horizon,
            **report.summary(),
        })
    if args.json != "-":
        print(report.render())
    return 0 if report.healthy else 1


def cmd_serve(args) -> int:
    import signal

    from repro.service import ResultCache, Scheduler, ServiceServer

    scheduler = Scheduler(
        workers=args.workers,
        cache=ResultCache(args.cache_capacity),
        use_processes=None if not args.inline else False,
    )
    server = ServiceServer(scheduler, host=args.host, port=args.port)
    host, port = server.address
    print("repro-service listening on {}:{} ({} worker{}, cache {})".format(
        host, port, args.workers, "s" if args.workers != 1 else "",
        args.cache_capacity))

    def _terminate(signum, frame):
        # same graceful path as Ctrl-C: unwind serve_forever so the
        # scheduler (and its worker processes) shut down too
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
    finally:
        signal.signal(signal.SIGTERM, previous)
    return 0


def _parse_job_shorthand(text: str):
    """``kind:design[:k=v,...]`` — e.g. ``lint:producer_consumer`` or
    ``soak:producer_consumer:seed=3,drop=0.2``.  ``@`` inside a value
    stands for ``:`` (rate words), ``+`` separates list items."""
    fields = text.split(":", 2)
    if len(fields) < 2:
        raise SystemExit(
            "bad job {!r}: want kind:design[:k=v,...]".format(text))
    kind, design = fields[0], fields[1]
    params = {}
    if len(fields) > 2 and fields[2]:
        for pair in fields[2].split(","):
            key, eq, raw = pair.partition("=")
            if not eq:
                raise SystemExit("bad job param {!r} in {!r}".format(pair, text))
            items = [v.replace("@", ":") for v in raw.split("+")]
            values = []
            for item in items:
                if item in ("true", "false"):
                    values.append(item == "true")
                else:
                    try:
                        values.append(int(item))
                    except ValueError:
                        try:
                            values.append(float(item))
                        except ValueError:
                            values.append(item)
            params[key] = values if len(values) > 1 else values[0]
    return {"kind": kind, "design": design, "params": params}


def cmd_submit(args) -> int:
    import json

    from repro.service.client import ServiceClient

    jobs = [_parse_job_shorthand(spec) for spec in args.jobs]
    for path in args.file or []:
        with open(path) as fh:
            loaded = json.load(fh)
        jobs.extend(loaded if isinstance(loaded, list) else [loaded])
    if not jobs:
        raise SystemExit("submit: no jobs (give kind:design[:k=v,...] "
                         "specs or --file)")
    if args.priority:
        for job in jobs:
            job.setdefault("priority", args.priority)
    with ServiceClient(args.host, args.connect) as client:
        ids = client.submit(jobs)
        print("submitted {} job(s): {} .. {}".format(len(ids), ids[0], ids[-1]))
        if not args.wait:
            return 0
        summaries = client.wait(ids, timeout=args.timeout)
        payload = []
        failed = 0
        for summary in summaries:
            line = "{id}  {state:<9} {kind:<9}".format(**summary)
            if summary.get("cache_hit"):
                line += "  [cached]"
            if summary.get("error"):
                line += "  {}".format(summary["error"])
            if summary["state"] != "done":
                failed += 1
            print(line)
            if args.json:
                payload.append(client.result(summary["id"]))
        if args.json:
            # results plus the server-side statistics snapshot, so one
            # artifact carries the service.* cache counters and the
            # persistent mc.store.* counters of this batch
            _emit_json(args.json, {"jobs": payload, "stats": client.stats()})
        return 1 if failed else 0


def cmd_coverage(args) -> int:
    from repro.sim.coverage import measure_coverage

    prog = _load(args.file)
    flat = flatten_program(prog)
    trace = simulate(prog, _parse_stim(args.stim), n=args.n)
    groups = [g.split(",") for g in (args.group or [])]
    report = measure_coverage(trace, component=flat, clock_groups=groups)
    print(report.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Polychronous (Signal) toolkit for GALS design"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="parse, type, causality and clock check")
    p.add_argument("file")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "lint", help="static desync-safety analysis (SIG*/GALS* rules)"
    )
    p.add_argument(
        "targets", nargs="*",
        help="Signal file, example module (.py), or repro.designs name",
    )
    p.add_argument(
        "--all-designs", action="store_true",
        help="also lint every canonical design in repro.designs",
    )
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (sarif: SARIF 2.1.0 for code-scanning UIs)",
    )
    p.add_argument(
        "--select", action="append",
        help="only report codes with these prefixes (comma-separated, "
        "repeatable), e.g. --select SIG002,GALS",
    )
    p.add_argument(
        "--ignore", action="append",
        help="suppress codes with these prefixes (comma-separated, repeatable)",
    )
    p.add_argument(
        "--rate", action="append", metavar="NAME:SPEC",
        help="clock-rate assumption for the buffer-bound rules: "
        "name:period[:phase] or name:CYCLE (e.g. p_act:2, x_rreq:1101)",
    )
    p.add_argument(
        "--synchronous", action="store_true",
        help="lint as a synchronous program (shared edges are wires, "
        "not FIFO channels)",
    )
    p.add_argument(
        "--fix", action="store_true",
        help="rewrite fixable findings in-place (uninitialized pre, "
        "unused inputs); Signal source files only",
    )
    p.add_argument("--output", metavar="PATH", help="write the report to PATH")
    p.add_argument(
        "--json", metavar="PATH",
        help="write the JSON report to PATH ('-' for stdout); exit code "
        "still reflects error findings",
    )
    p.add_argument(
        "--sarif", metavar="PATH",
        help="write the SARIF 2.1.0 report to PATH ('-' for stdout)",
    )
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("format", help="pretty-print Signal source")
    p.add_argument("file")
    p.set_defaults(fn=cmd_format)

    p = sub.add_parser("clocks", help="clock calculus report")
    p.add_argument("file")
    p.set_defaults(fn=cmd_clocks)

    p = sub.add_parser("graph", help="export Graphviz DOT views")
    p.add_argument("file")
    p.add_argument(
        "--view", choices=("program", "signals", "clocks"), default="program"
    )
    p.set_defaults(fn=cmd_graph)

    p = sub.add_parser("simulate", help="simulate with periodic stimuli")
    p.add_argument("file")
    p.add_argument("--stim", action="append", help="name:period[:phase[:value|count]]")
    p.add_argument("-n", type=int, default=20, help="number of instants")
    p.add_argument("--signals", help="comma-separated columns to render")
    p.add_argument("--vcd", help="write a VCD waveform to this path")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("desync", help="insert FIFO channels (Theorems 1-2)")
    p.add_argument("file")
    p.add_argument("--capacity", type=int, default=1)
    p.add_argument("--kind", choices=("direct", "chain"), default="direct")
    p.add_argument("--instrument", action="store_true", help="add Figure 4 watchdogs")
    p.set_defaults(fn=cmd_desync)

    p = sub.add_parser("estimate", help="buffer-size estimation loop (Sec 5.2)")
    p.add_argument("file")
    p.add_argument("--stim", action="append", required=True)
    p.add_argument("-n", type=int, default=100, help="horizon per iteration")
    p.add_argument("--initial", type=int, default=1)
    p.add_argument("--kind", choices=("direct", "chain"), default="direct")
    p.set_defaults(fn=cmd_estimate)

    p = sub.add_parser("verify", help="model-check 'signal never present'")
    p.add_argument("file")
    p.add_argument("--never", required=True, help="signal that must never occur")
    p.add_argument(
        "--backend",
        choices=("explicit", "symbolic", "bounded"),
        default="explicit",
        help="explicit LTS, symbolic BDD (boolean designs), or bounded search",
    )
    p.add_argument("--depth", type=int, default=12, help="bound for --backend bounded")
    p.add_argument("--int-values", default="0,1", help="integer input domain")
    p.add_argument("--always", action="append", help="pin an input present")
    p.add_argument("--never-input", action="append", help="tie an input off")
    p.add_argument("--max-states", type=int, default=200000)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser(
        "mc",
        help="persistent verification store (stats/prune/clear) and "
        "store-aware model checking",
    )
    msub = p.add_subparsers(dest="mc_command", required=True)

    def _mc_store_arg(parser):
        parser.add_argument(
            "--store", metavar="DIR",
            help="store root (default: $REPRO_MC_STORE)",
        )
        parser.set_defaults(fn=cmd_mc)

    mp = msub.add_parser("stats", help="store footprint and hit counters")
    _mc_store_arg(mp)
    mp = msub.add_parser("prune", help="evict LRU entries down to a byte cap")
    mp.add_argument("--limit", type=int, metavar="BYTES",
                    help="target size (default: the store's own cap)")
    _mc_store_arg(mp)
    mp = msub.add_parser("clear", help="drop every store entry")
    _mc_store_arg(mp)
    mp = msub.add_parser(
        "verify",
        help="store-aware 'never present' check "
        "(warm reruns are served from the store)",
    )
    mp.add_argument(
        "target", help="Signal file, or corpus design name[:k=v,...] "
        "(e.g. gals_relay_chain:stages=8)",
    )
    mp.add_argument("--never", required=True,
                    help="signal that must never occur")
    mp.add_argument(
        "--backend",
        choices=("explicit", "symbolic", "bounded", "compose"),
        default="explicit",
    )
    mp.add_argument(
        "--contract", action="append", metavar="SIGNAL=NAME",
        help="channel contract for --backend compose "
        "(NAME: free or alternating)",
    )
    mp.add_argument("--depth", type=int, default=12,
                    help="bound for --backend bounded")
    mp.add_argument("--int-values", default="0,1")
    mp.add_argument("--always", action="append",
                    help="pin an input present")
    mp.add_argument("--never-input", action="append",
                    help="tie an input off")
    mp.add_argument("--max-states", type=int, default=200000)
    _mc_store_arg(mp)

    p = sub.add_parser(
        "prove",
        help="static flow-equivalence prover: PROVEN / REFUTED / unknown "
        "with refutation witnesses",
    )
    p.add_argument(
        "target", help="Signal file, or corpus design name[:k=v,...]"
    )
    p.add_argument(
        "--rate", action="append", metavar="NAME:SPEC",
        help="clock-rate assumption: name:period[:phase] or name:CYCLE "
        "(enables the affine inductive path)",
    )
    p.add_argument(
        "--capacity", action="append", metavar="N|SIGNAL=N",
        help="channel capacity: one bare int for every channel, or "
        "SIGNAL=N (repeatable)",
    )
    p.add_argument(
        "--backend",
        choices=("auto", "affine", "explicit", "symbolic", "compose"),
        default="auto",
        help="auto: affine induction when applicable, else model checking "
        "on the source/deployment product",
    )
    p.add_argument(
        "--fifo", choices=("direct", "boolean"), default="direct",
        help="boolean: deploy the paper's one-place boolean FIFO "
        "(all-boolean product; symbolic-backend friendly)",
    )
    p.add_argument(
        "--backpressure", action="append", metavar="COMPONENT=INPUT",
        help="mask a producer activation input with the channel's full "
        "status (repeatable)",
    )
    p.add_argument("--int-values", default="0,1", help="integer input domain")
    p.add_argument("--always", action="append", help="pin an input present")
    p.add_argument("--never-input", action="append", help="tie an input off")
    p.add_argument("--max-states", type=int, default=20000)
    p.add_argument(
        "--store", metavar="DIR",
        help="certificate store root (default: $REPRO_MC_STORE)",
    )
    p.add_argument(
        "--json", metavar="PATH",
        help="write the certificate to PATH ('-' for stdout)",
    )
    p.add_argument(
        "--replay", action="store_true",
        help="replay a refutation witness in the simulator and check the "
        "divergence instant",
    )
    p.set_defaults(fn=cmd_prove)

    p = sub.add_parser(
        "faults", help="fault-injection soak of a GALS deployment"
    )
    p.add_argument(
        "action", choices=("soak", "plan"),
        help="soak: faulted vs reference co-simulation; plan: dump the "
        "explicit fault schedule",
    )
    p.add_argument(
        "--design", choices=sorted(_FAULT_DESIGNS), default="prodcons"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--drop", type=float, default=0.0, help="P(drop) per push")
    p.add_argument("--dup", type=float, default=0.0, help="P(duplicate)")
    p.add_argument("--reorder", type=float, default=0.0, help="P(reorder)")
    p.add_argument("--window", type=int, default=2, help="reorder window")
    p.add_argument("--jitter", type=float, default=0.0, help="max extra latency")
    p.add_argument("--corrupt", type=float, default=0.0, help="P(value flip)")
    p.add_argument("--stall", type=float, default=0.0, help="P(node stall window)")
    p.add_argument("--stall-period", type=float, default=2.0)
    p.add_argument("--horizon", type=float, default=50.0)
    p.add_argument("--period", type=int, default=1, help="producer period")
    p.add_argument("--reader-period", type=int, default=1)
    p.add_argument(
        "--estimate", action="store_true",
        help="also report buffer-capacity inflation under read jitter",
    )
    p.add_argument("--hold", type=float, default=0.25, help="P(read deferred)")
    p.add_argument("-n", type=int, default=20, help="plan prefix / estimate horizon")
    p.add_argument(
        "--json", metavar="PATH",
        help="write a JSON digest to PATH ('-' for stdout)",
    )
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser(
        "recover",
        help="recovery soak: hardened faulted deployment vs reference",
    )
    p.add_argument(
        "action", choices=("soak",),
        help="soak: co-simulate with reliable channels + supervisor woven in",
    )
    p.add_argument(
        "--design", choices=sorted(_FAULT_DESIGNS), default="prodacc"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--drop", type=float, default=0.0, help="P(drop) per push")
    p.add_argument("--dup", type=float, default=0.0, help="P(duplicate)")
    p.add_argument("--reorder", type=float, default=0.0, help="P(reorder)")
    p.add_argument("--window", type=int, default=2, help="reorder window")
    p.add_argument("--jitter", type=float, default=0.0, help="max extra latency")
    p.add_argument("--corrupt", type=float, default=0.0, help="P(value flip)")
    p.add_argument(
        "--crash", action="append", metavar="NODE:START:END",
        help="crash window: node down and loses state (repeatable)",
    )
    p.add_argument(
        "--stall", action="append", metavar="NODE:START:END",
        help="stall window: node down, state intact (repeatable)",
    )
    p.add_argument(
        "--workload", choices=("steady", "burst"), default="burst",
        help="burst: finite burst + drain (clean equivalence); steady: periodic",
    )
    p.add_argument("--burst", type=int, default=10, help="burst length")
    p.add_argument("--period", type=float, default=1.0, help="consumer/drain period")
    p.add_argument("--horizon", type=float, default=40.0)
    p.add_argument("--rto", type=float, default=1.5, help="retransmit timeout")
    p.add_argument("--rto-backoff", type=float, default=1.5)
    p.add_argument("--retries", type=int, default=10, help="retry budget per frame")
    p.add_argument("--ack-latency", type=float, default=0.0)
    p.add_argument("--watchdog", type=float, default=2.5)
    p.add_argument("--checkpoint-interval", type=float, default=3.0)
    p.add_argument("--max-restarts", type=int, default=3)
    p.add_argument("--restart-spacing", type=float, default=0.0)
    p.add_argument(
        "--json", metavar="PATH",
        help="write a JSON digest to PATH ('-' for stdout)",
    )
    p.set_defaults(fn=cmd_recover)

    p = sub.add_parser(
        "serve", help="run the verification-job service (socket API)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7712,
                   help="TCP port (0 picks an ephemeral one)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--cache-capacity", type=int, default=4096,
                   help="result-cache entries kept (LRU)")
    p.add_argument("--inline", action="store_true",
                   help="execute jobs in-process instead of a worker pool")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit verification jobs to a running service"
    )
    p.add_argument(
        "jobs", nargs="*",
        help="job shorthand kind:design[:k=v,...] — e.g. "
             "lint:producer_consumer:rates=p_act@1+x_rreq@2 or "
             "soak:producer_consumer:seed=3,drop=0.2",
    )
    p.add_argument("--file", action="append",
                   help="JSON file with a job spec or a list of them")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--connect", type=int, default=7712, metavar="PORT")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--wait", action="store_true",
                   help="block until the jobs finish; exit 1 on failures")
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--json", metavar="PATH",
                   help="with --wait: dump result envelopes ('-' = stdout)")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("coverage", help="measure stimulus coverage")
    p.add_argument("file")
    p.add_argument("--stim", action="append", required=True)
    p.add_argument("-n", type=int, default=50)
    p.add_argument(
        "--group", action="append",
        help="comma-separated signals whose presence patterns to track",
    )
    p.set_defaults(fn=cmd_coverage)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    except OSError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
