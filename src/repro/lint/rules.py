"""The rule implementations behind ``repro lint``.

Every rule is a function from a :class:`_Context` to a list of
:class:`~repro.lint.diagnostics.Diagnostic`.  Rules reuse the existing
analyses — clock calculus, dependency graphs, shared-signal orientation,
the desynchronization worklist — rather than re-simulating anything, so a
full lint of a design takes milliseconds.

Rule catalogue (see ``docs/static-analysis.md`` for examples):

========  ========  ====================================================
code      severity  meaning
========  ========  ====================================================
SIG001    warning   clocks not determined by inputs (endochrony proxy)
SIG002    error     signal written by more than one equation
SIG003    error     instantaneous dependency cycle within a component
SIG004    error     uninitialized ``pre`` (fixable)
SIG005    warning   local defined but never read
SIG006    warning   input never read (fixable)
SIG007    error     non-input signal with no defining equation
SIG008    warning   provably empty clock (signal never present)
GALS001   error     inter-node instantaneous cycle through FIFO-free edges
GALS002   error     write-write race across GALS domain boundaries
GALS003   info      static FIFO capacity bound (affine clocks)
GALS004   warning   declared capacity below the static bound
GALS005   warning   channel unbounded under the assumed rates
GALS006   info      flow equivalence PROVEN (occupancy induction)
GALS007   error     flow equivalence REFUTED (overflow witness)
========  ========  ====================================================
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import ReproError
from repro.clocks.hierarchy import analyze_clocks
from repro.lang.analysis import (
    classify_signals,
    dependency_graph,
    flatten_program,
    instantaneous_cycles,
    shared_signals,
)
from repro.lang.ast import Component, Equation, Pre, Program, Span
from repro.lint.bounds import (
    PeriodicWord,
    channel_bound,
    delivered_reads,
    infer_clock_words,
)
from repro.lint.diagnostics import Diagnostic, make


class _Context:
    """Everything the rules need about one program under analysis."""

    def __init__(
        self,
        program: Program,
        file: str = "",
        rates: Optional[Mapping[str, PeriodicWord]] = None,
        capacities: Optional[Mapping[str, int]] = None,
        cut_channels: bool = True,
    ):
        self.program = program
        self.file = file
        self.rates: Dict[str, PeriodicWord] = dict(rates or {})
        self.capacities: Dict[str, int] = dict(capacities or {})
        #: True when shared-signal edges are deployed as FIFO channels
        #: (the GALS reading); False lints the fully synchronous program.
        self.cut_channels = cut_channels
        self.shared = shared_signals(program)

    def statement_span(self, comp: Component, target: str) -> Optional[Span]:
        for eq in comp.equations():
            if eq.target == target:
                return eq.span
        return None


# ---------------------------------------------------------------------------
# SIG rules: per-component, synchronous
# ---------------------------------------------------------------------------


def rule_endochrony(ctx: _Context) -> List[Diagnostic]:
    """SIG001 + SIG008: free clocks (oracle needed) and dead clocks."""
    out: List[Diagnostic] = []
    for comp in ctx.program.components:
        try:
            analysis = analyze_clocks(comp)
        except ReproError:
            continue  # unparseable clocks are reported by other rules
        if analysis.free:
            interesting = sorted(
                n
                for rep in analysis.free
                for n in analysis.classes.get(rep, {rep})
                if n in comp.signals()
            )
            if interesting:
                out.append(
                    make(
                        "SIG001",
                        "clocks of {} are not determined by the inputs; "
                        "simulation needs an oracle".format(
                            ", ".join(interesting)
                        ),
                        component=comp.name,
                        signal=interesting[0],
                        span=ctx.statement_span(comp, interesting[0]),
                        file=ctx.file,
                    )
                )
        for rep in sorted(analysis.dead):
            members = sorted(
                n for n in analysis.classes.get(rep, {rep})
                if n in comp.signals()
            )
            if members:
                out.append(
                    make(
                        "SIG008",
                        "clock of {} is provably empty: the signal is "
                        "never present".format(", ".join(members)),
                        component=comp.name,
                        signal=members[0],
                        span=ctx.statement_span(comp, members[0]),
                        file=ctx.file,
                    )
                )
    return out


def rule_races(ctx: _Context) -> List[Diagnostic]:
    """SIG002 (within a component) and GALS002 (across components)."""
    out: List[Diagnostic] = []
    for comp in ctx.program.components:
        seen: Dict[str, Equation] = {}
        for eq in comp.equations():
            if eq.target in seen:
                out.append(
                    make(
                        "SIG002",
                        "signal {} is written by more than one equation "
                        "in {}".format(eq.target, comp.name),
                        component=comp.name,
                        signal=eq.target,
                        span=eq.span or seen[eq.target].span,
                        file=ctx.file,
                    )
                )
            else:
                seen[eq.target] = eq
    for s in ctx.shared:
        if len(s.producers) > 1:
            writers = ", ".join(s.producers)
            if ctx.cut_channels:
                out.append(
                    make(
                        "GALS002",
                        "signal {} is driven by {} — desynchronizing "
                        "would multiplex {} unsynchronized writers into "
                        "one channel".format(
                            s.name, writers, len(s.producers)
                        ),
                        component=s.producers[0],
                        signal=s.name,
                        span=ctx.statement_span(
                            ctx.program.component(s.producers[1]), s.name
                        ),
                        file=ctx.file,
                    )
                )
            else:
                out.append(
                    make(
                        "SIG002",
                        "shared signal {} is written by several "
                        "components: {}".format(s.name, writers),
                        component=s.producers[0],
                        signal=s.name,
                        span=ctx.statement_span(
                            ctx.program.component(s.producers[1]), s.name
                        ),
                        file=ctx.file,
                    )
                )
    return out


def rule_causality(ctx: _Context) -> List[Diagnostic]:
    """SIG003: instantaneous cycles inside each component."""
    out: List[Diagnostic] = []
    for comp in ctx.program.components:
        for cycle in instantaneous_cycles(comp):
            out.append(
                make(
                    "SIG003",
                    "instantaneous dependency cycle: {}".format(
                        " -> ".join(cycle + [cycle[0]])
                    ),
                    component=comp.name,
                    signal=cycle[0],
                    span=ctx.statement_span(comp, cycle[0]),
                    file=ctx.file,
                )
            )
    return out


def rule_uninitialized_pre(ctx: _Context) -> List[Diagnostic]:
    """SIG004: ``pre`` without an initial value (mechanically fixable)."""
    out: List[Diagnostic] = []
    for comp in ctx.program.components:
        for eq in comp.equations():
            for node in eq.expr.walk():
                if isinstance(node, Pre) and node.init is None:
                    out.append(
                        make(
                            "SIG004",
                            "uninitialized pre in the definition of {}: "
                            "its first value is undefined".format(eq.target),
                            component=comp.name,
                            signal=eq.target,
                            span=eq.span,
                            file=ctx.file,
                        )
                    )
    return out


def rule_hygiene(ctx: _Context) -> List[Diagnostic]:
    """SIG005 (dead locals), SIG006 (unused inputs), SIG007 (undefined)."""
    out: List[Diagnostic] = []
    shared_names = {s.name for s in ctx.shared}
    for comp in ctx.program.components:
        classes = classify_signals(comp)
        read: Set[str] = set()
        for st in comp.statements:
            read |= set(st.free_vars())
        for name in sorted(classes.locals):
            if name in classes.defined and name not in read:
                out.append(
                    make(
                        "SIG005",
                        "local {} is defined but never read".format(name),
                        component=comp.name,
                        signal=name,
                        span=ctx.statement_span(comp, name),
                        file=ctx.file,
                    )
                )
        for name in sorted(classes.inputs):
            if name not in read:
                out.append(
                    make(
                        "SIG006",
                        "input {} is never read".format(name),
                        component=comp.name,
                        signal=name,
                        file=ctx.file,
                    )
                )
        for name in sorted(classes.undefined):
            # a shared signal defined by a sibling component is fine
            if name in shared_names:
                continue
            out.append(
                make(
                    "SIG007",
                    "{} {} has no defining equation".format(
                        "output" if name in classes.outputs else "local",
                        name,
                    ),
                    component=comp.name,
                    signal=name,
                    file=ctx.file,
                )
            )
    return out


# ---------------------------------------------------------------------------
# GALS rules: the network reading of the program
# ---------------------------------------------------------------------------


def _inter_node_cycles(
    program: Program, buffered: Set[Tuple[str, str]]
) -> List[List[str]]:
    """Instantaneous cycles of the *inter-node* dependency graph.

    Nodes are components; an edge ``P -> Q`` exists when ``Q``'s current
    reaction instantaneously depends (input to output, through ``Q``'s own
    equations) on a shared signal produced by ``P`` — unless the
    ``(signal, consumer)`` edge is in ``buffered`` (a FIFO channel cuts
    the instantaneous path, exactly as ``pre`` does within a component).
    """
    produced_by: Dict[str, str] = {}
    for s in shared_signals(program):
        for p in s.producers:
            produced_by.setdefault(s.name, p)

    # per-component: which outputs instantaneously depend on which inputs
    reaches: Dict[str, Dict[str, Set[str]]] = {}
    for comp in program.components:
        graph = dependency_graph(comp, instantaneous=True)
        closure: Dict[str, Set[str]] = {}

        def inputs_reached(sig: str, stack: Set[str]) -> Set[str]:
            if sig in closure:
                return closure[sig]
            if sig in stack:
                return set()
            stack.add(sig)
            deps = set()
            for d in graph.get(sig, ()):  # defined: follow; else a source
                if d in graph:
                    deps |= inputs_reached(d, stack)
                elif d in comp.inputs:
                    deps.add(d)
            stack.discard(sig)
            closure[sig] = deps
            return deps

        reaches[comp.name] = {
            out: inputs_reached(out, set()) for out in comp.outputs
        }

    edges: Dict[str, Set[str]] = {c.name: set() for c in program.components}
    for comp in program.components:
        for out, ins in reaches[comp.name].items():
            for inp in ins:
                producer = produced_by.get(inp)
                if producer is None or producer == comp.name:
                    continue
                if (inp, comp.name) in buffered:
                    continue  # the FIFO cuts the instantaneous path
                edges[comp.name].add(producer)

    # Tarjan over the component graph (same canonicalization as
    # lang.analysis.instantaneous_cycles)
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(edges.get(v, ())):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            scc = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                scc.append(w)
                if w == v:
                    break
            if len(scc) > 1 or v in edges.get(v, ()):
                scc = sorted(scc)
                members = set(scc)
                if len(scc) == 1:
                    cycles.append(scc)
                else:
                    path: List[str] = []
                    seen_at: Dict[str, int] = {}
                    node = min(scc)
                    while node not in seen_at:
                        seen_at[node] = len(path)
                        path.append(node)
                        node = min(
                            w for w in edges.get(node, ()) if w in members
                        )
                    cyc = path[seen_at[node]:]
                    pivot = cyc.index(min(cyc))
                    cycles.append(cyc[pivot:] + cyc[:pivot])

    for node in sorted(edges):
        if node not in index:
            strongconnect(node)
    return sorted(cycles)


def rule_network_causality(
    ctx: _Context, buffered: Optional[Set[Tuple[str, str]]] = None
) -> List[Diagnostic]:
    """GALS001: instantaneous cycles threaded through FIFO-free edges.

    ``buffered`` is the set of ``(signal, consumer)`` channel edges that
    carry a FIFO (cut).  By default every shared edge of a GALS deployment
    is buffered — the rule then fires only for cycles that remain, i.e.
    cycles through edges left FIFO-free.
    """
    if buffered is None:
        buffered = (
            {(s.name, c) for s in ctx.shared for c in s.consumers}
            if ctx.cut_channels
            else set()
        )
    out: List[Diagnostic] = []
    for cycle in _inter_node_cycles(ctx.program, buffered):
        first = cycle[0]
        out.append(
            make(
                "GALS001",
                "instantaneous cycle across nodes {}: no node can fire "
                "first; insert a FIFO or a pre on one edge".format(
                    " -> ".join(cycle + [first])
                ),
                component=first,
                span=next(
                    (
                        eq.span
                        for eq in ctx.program.component(first).equations()
                        if eq.span is not None
                    ),
                    None,
                ),
                file=ctx.file,
            )
        )
    return out


def rule_buffer_bounds(ctx: _Context) -> List[Diagnostic]:
    """GALS003/GALS004/GALS005: static capacity bounds per channel edge.

    Needs rate assumptions (``--rate``) for the activation inputs and for
    the read-request words of the channels (``<signal>_rreq`` by default,
    or the consumer's own delivery when it is data-driven).  Channels
    whose clocks are not derivable from the assumptions are skipped.

    The per-edge words and bounds come from
    :func:`repro.prove.affine.channel_edge_words` — the same
    producer-to-consumer delivered sweep the flow-equivalence prover
    runs, so lint's bound and the prover's induction can never disagree.
    """
    if not ctx.rates or not ctx.cut_channels:
        return []
    from repro.prove.affine import BOUNDED, UNBOUNDED, channel_edge_words

    out: List[Diagnostic] = []
    for e in channel_edge_words(ctx.program, ctx.rates):
        edge = "{} -> {} : {}".format(e.producer, e.consumer, e.signal)
        if e.status == UNBOUNDED:
            out.append(
                make(
                    "GALS005",
                    "channel {} is unbounded under the assumed rates "
                    "(write rate {} > read rate {})".format(
                        edge, e.write.rate(), e.read.rate()
                    ),
                    component=e.producer,
                    signal=e.signal,
                    file=ctx.file,
                )
            )
        elif e.status == BOUNDED:
            out.append(
                make(
                    "GALS003",
                    "channel {} needs capacity {} (static bound from "
                    "write word {!r}, read word {!r})".format(
                        edge, e.bound, e.write.normalized(),
                        e.read.normalized()
                    ),
                    component=e.producer,
                    signal=e.signal,
                    file=ctx.file,
                )
            )
            declared = ctx.capacities.get(e.signal)
            if declared is not None and declared < e.bound:
                out.append(
                    make(
                        "GALS004",
                        "channel {} declared with capacity {} but the "
                        "static bound is {}".format(edge, declared, e.bound),
                        component=e.producer,
                        signal=e.signal,
                        file=ctx.file,
                    )
                )
    return sorted(out, key=lambda d: (d.signal, d.code, d.message))


def rule_flow_equivalence(ctx: _Context) -> List[Diagnostic]:
    """GALS006/GALS007: escalate the GALS003 bound to a proof verdict.

    When the design is endochronous under the assumed rates and every
    channel's clock words are derivable, the occupancy induction of
    :mod:`repro.prove.affine` turns each bound into a theorem: GALS006
    (info) records that the channel's deployment is flow-equivalent to
    the synchronous source for every input stream at these rates;
    GALS007 (error) records a refutation with the exact first overflow
    instant — replay the witness with ``repro prove --replay``.  The
    rule stays silent when the inductive argument does not apply (the
    model-checking path of ``repro prove`` takes over there).
    """
    if not ctx.rates or not ctx.cut_channels:
        return []
    from repro.prove.affine import (
        BOUNDED,
        UNBOUNDED,
        affine_flow_analysis,
        overflow_instant,
    )

    analysis = affine_flow_analysis(ctx.program, ctx.rates)
    if not (analysis.endochronous and analysis.complete and analysis.edges):
        return []
    out: List[Diagnostic] = []
    for e in analysis.edges:
        edge = "{} -> {} : {}".format(e.producer, e.consumer, e.signal)
        declared = ctx.capacities.get(e.signal)
        if e.status == UNBOUNDED:
            cap = declared if declared is not None else 1
            instant = overflow_instant(e.write, e.read, cap)
            out.append(
                make(
                    "GALS007",
                    "flow equivalence REFUTED for channel {}: no finite "
                    "capacity suffices under the assumed rates; with "
                    "capacity {} the first rejected write is at instant "
                    "{}".format(edge, cap, instant),
                    component=e.producer,
                    signal=e.signal,
                    file=ctx.file,
                )
            )
        elif e.status == BOUNDED and declared is not None and declared < e.bound:
            instant = overflow_instant(e.write, e.read, declared)
            out.append(
                make(
                    "GALS007",
                    "flow equivalence REFUTED for channel {}: deployed "
                    "capacity {} is below the inductive bound {}; the "
                    "first rejected write is at instant {}".format(
                        edge, declared, e.bound, instant
                    ),
                    component=e.producer,
                    signal=e.signal,
                    file=ctx.file,
                )
            )
        elif e.status == BOUNDED:
            where = (
                "capacity {}".format(declared)
                if declared is not None
                else "any capacity >= {}".format(e.bound)
            )
            out.append(
                make(
                    "GALS006",
                    "flow equivalence PROVEN for channel {} at {}: "
                    "inductive occupancy bound {} (write word {!r}, read "
                    "word {!r}); the deployed FIFO never rejects a write "
                    "under the assumed rates".format(
                        edge, where, e.bound, e.write.normalized(),
                        e.read.normalized()
                    ),
                    component=e.producer,
                    signal=e.signal,
                    file=ctx.file,
                )
            )
    return sorted(out, key=lambda d: (d.signal, d.code, d.message))


ALL_RULES = (
    rule_endochrony,
    rule_races,
    rule_causality,
    rule_uninitialized_pre,
    rule_hygiene,
    rule_network_causality,
    rule_buffer_bounds,
    rule_flow_equivalence,
)
