"""The lint engine: run every rule over a program or a network.

:func:`lint_program` is the main entry point (the ``repro lint`` CLI is a
thin wrapper around it).  :func:`lint_network` lints the program behind a
live :class:`~repro.gals.network.AsyncNetwork` and additionally checks
the network's *declared* channel capacities against the static bounds.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Set, Tuple

from repro.lang.ast import Program
from repro.lint.bounds import PeriodicWord
from repro.lint.diagnostics import LintReport
from repro.lint import rules as _rules


def parse_rates(specs: Sequence[str]) -> dict:
    """Parse ``name:spec`` rate assumptions (see ``PeriodicWord.parse``).

    ``p_act:1`` — present every instant; ``x_rreq:2`` — every 2nd instant;
    ``x_rreq:2:1`` — every 2nd instant starting at the 2nd; ``tick:1101``
    — the literal cycle.
    """
    out = {}
    for spec in specs:
        name, _, word = spec.partition(":")
        if not name or not word:
            raise ValueError(
                "bad rate {!r}: expected name:period[:phase] "
                "or name:CYCLE".format(spec)
            )
        out[name] = PeriodicWord.parse(word)
    return out


def lint_program(
    program: Program,
    file: str = "",
    rates: Optional[Mapping[str, PeriodicWord]] = None,
    capacities: Optional[Mapping[str, int]] = None,
    cut_channels: bool = True,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    buffered: Optional[Set[Tuple[str, str]]] = None,
) -> LintReport:
    """Run the full rule set over ``program``.

    ``rates`` maps input/clock names to assumed presence words (enables
    the GALS003/004/005 bound rules).  ``capacities`` declares per-signal
    channel capacities to check against the bounds.  ``cut_channels``
    states whether shared-signal edges will be deployed as FIFO channels
    (the GALS reading; the default) or stay synchronous wires.
    ``buffered`` overrides the set of ``(signal, consumer)`` edges that
    carry a FIFO for the network-causality rule.
    """
    ctx = _rules._Context(
        program,
        file=file,
        rates=rates,
        capacities=capacities,
        cut_channels=cut_channels,
    )
    diagnostics = []
    for rule in _rules.ALL_RULES:
        if rule is _rules.rule_network_causality:
            diagnostics.extend(rule(ctx, buffered=buffered))
        else:
            diagnostics.extend(rule(ctx))
    report = LintReport(program.name, diagnostics)
    return report.filter(select=select, ignore=ignore)


def lint_network(
    network,
    rates: Optional[Mapping[str, PeriodicWord]] = None,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> LintReport:
    """Lint the program behind an :class:`~repro.gals.network.AsyncNetwork`.

    The network's channel topology supplies the buffered-edge set for the
    causality rule and its declared capacities feed the GALS004 check.
    An unbounded-policy network has no declared capacities to check.
    """
    program = Program(
        "network", [node.component for node in network.nodes]
    )
    buffered = set(network.channels.keys())
    capacities = {}
    for (sig, _consumer), channel in network.channels.items():
        if channel.capacity is not None:
            cap = capacities.get(sig)
            capacities[sig] = (
                channel.capacity if cap is None else min(cap, channel.capacity)
            )
    return lint_program(
        program,
        rates=rates,
        capacities=capacities,
        cut_channels=True,
        select=select,
        ignore=ignore,
        buffered=buffered,
    )
