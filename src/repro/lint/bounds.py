"""Static FIFO-capacity bounds from affine clock relations.

The paper sizes channels *dynamically*: simulate the desynchronized
program, count FIFO misses, grow, repeat (Section 5.2 — implemented by
:mod:`repro.desync.estimator`).  When the clocks involved are *affine* —
ultimately periodic activations, ``clock_divider``-style modular
subsampling — the same answer is available in closed form, without
simulating anything.

Clocks are represented as ultimately periodic boolean words
(:class:`PeriodicWord`, prefix + repeated cycle — the representation of
the n-synchronous clock calculus).  A channel with write word ``w`` and
read word ``r`` behaves like the paper's FIFO (a write at instant ``t`` is
first readable at ``t+1``; a read succeeds iff the buffer was nonempty at
the start of the instant — exactly :func:`repro.desync.fifo.n_fifo_direct`),
so its occupancy is a deterministic automaton over the joint hyperperiod;
the peak occupancy is the minimal sufficient capacity and the long-run
rates decide boundedness (writer rate > reader rate ⟺ no finite bound).

:func:`infer_clock_words` propagates input-rate assumptions through a
component's equations by presence-abstract interpretation, recognizing
the modular-counter sampling pattern of
:func:`repro.lang.stdlib.clock_divider`.  Unknown (data-dependent)
clocks simply stay unknown — the linter reports bounds only for channels
whose two clocks were both derived.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.lang.ast import (
    App,
    ClockOf,
    Component,
    Const,
    Default,
    Equation,
    Expr,
    Pre,
    Var,
    When,
)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def _lcm(a: int, b: int) -> int:
    return a // _gcd(a, b) * b


class PeriodicWord:
    """An ultimately periodic boolean word: ``prefix`` then ``cycle`` forever."""

    __slots__ = ("prefix", "cycle")

    def __init__(self, prefix=(), cycle=(True,)):
        self.prefix: Tuple[bool, ...] = tuple(bool(b) for b in prefix)
        cycle = tuple(bool(b) for b in cycle)
        if not cycle:
            raise ValueError("periodic word needs a nonempty cycle")
        self.cycle: Tuple[bool, ...] = cycle

    # -- constructors -------------------------------------------------------

    @classmethod
    def always(cls) -> "PeriodicWord":
        return cls((), (True,))

    @classmethod
    def never(cls) -> "PeriodicWord":
        return cls((), (False,))

    @classmethod
    def periodic(cls, period: int, phase: int = 0) -> "PeriodicWord":
        """Present once every ``period`` instants, first at ``phase``."""
        if period < 1:
            raise ValueError("period must be >= 1")
        if not 0 <= phase < period:
            phase %= period
        return cls((), tuple(i == phase for i in range(period)))

    @classmethod
    def parse(cls, spec: str) -> "PeriodicWord":
        """``"3"`` -> every 3rd instant; ``"3:1"`` -> phase 1; ``"0"``/``"-"``
        -> never; a string of 0/1 -> that cycle verbatim."""
        spec = spec.strip()
        if spec in ("0", "-", "never"):
            return cls.never()
        if set(spec) <= {"0", "1"} and len(spec) > 1:
            return cls((), tuple(c == "1" for c in spec))
        if ":" in spec:
            period, phase = spec.split(":", 1)
            return cls.periodic(int(period), int(phase))
        return cls.periodic(int(spec))

    # -- access -------------------------------------------------------------

    def at(self, t: int) -> bool:
        if t < len(self.prefix):
            return self.prefix[t]
        return self.cycle[(t - len(self.prefix)) % len(self.cycle)]

    def rate(self) -> Fraction:
        """Long-run fraction of present instants."""
        return Fraction(sum(self.cycle), len(self.cycle))

    def expand(self, prefix_len: int, cycle_len: int) -> "PeriodicWord":
        """The same word re-laid-out with the given prefix/cycle lengths
        (``cycle_len`` must be a multiple of the current cycle length,
        ``prefix_len`` at least the current prefix length)."""
        prefix = tuple(self.at(t) for t in range(prefix_len))
        cycle = tuple(
            self.at(prefix_len + t) for t in range(cycle_len)
        )
        return PeriodicWord(prefix, cycle)

    def _aligned(self, other: "PeriodicWord"):
        prefix_len = max(len(self.prefix), len(other.prefix))
        cycle_len = _lcm(len(self.cycle), len(other.cycle))
        return (
            self.expand(prefix_len, cycle_len),
            other.expand(prefix_len, cycle_len),
        )

    # -- algebra ------------------------------------------------------------

    def __and__(self, other: "PeriodicWord") -> "PeriodicWord":
        a, b = self._aligned(other)
        return PeriodicWord(
            tuple(x and y for x, y in zip(a.prefix, b.prefix)),
            tuple(x and y for x, y in zip(a.cycle, b.cycle)),
        )

    def __or__(self, other: "PeriodicWord") -> "PeriodicWord":
        a, b = self._aligned(other)
        return PeriodicWord(
            tuple(x or y for x, y in zip(a.prefix, b.prefix)),
            tuple(x or y for x, y in zip(a.cycle, b.cycle)),
        )

    def normalized(self) -> "PeriodicWord":
        """Smallest equivalent representation (minimal cycle, then prefix)."""
        cycle = list(self.cycle)
        for d in range(1, len(cycle) + 1):
            if len(cycle) % d:
                continue
            if cycle == cycle[:d] * (len(cycle) // d):
                cycle = cycle[:d]
                break
        prefix = list(self.prefix)
        while prefix and prefix[-1] == cycle[-1]:
            prefix.pop()
            cycle = cycle[-1:] + cycle[:-1]
        return PeriodicWord(tuple(prefix), tuple(cycle))

    def __eq__(self, other):
        if not isinstance(other, PeriodicWord):
            return NotImplemented
        a = self.normalized()
        b = other.normalized()
        return a.prefix == b.prefix and a.cycle == b.cycle

    def __hash__(self):
        n = self.normalized()
        return hash((n.prefix, n.cycle))

    def __repr__(self):
        n = self.normalized()
        return "PeriodicWord({}|{})".format(
            "".join("1" if b else "0" for b in n.prefix),
            "".join("1" if b else "0" for b in n.cycle),
        )


def channel_bound(
    write: PeriodicWord, read: PeriodicWord
) -> Optional[int]:
    """Peak occupancy of a FIFO written at ``write`` and read at ``read``.

    ``None`` means unbounded: the writer's long-run rate exceeds the
    reader's, so no finite capacity avoids overflow.  Semantics match the
    paper's FIFOs (:func:`repro.desync.fifo.n_fifo_direct`): a read at
    instant ``t`` succeeds iff the count at the start of ``t`` is positive
    — a same-instant write is not yet readable.
    """
    if write.rate() > read.rate():
        return None
    w, r = write._aligned(read)
    start = len(w.prefix)
    period = len(w.cycle)
    count = 0
    peak = 0

    def step(t: int) -> None:
        nonlocal count, peak
        rd = r.at(t) and count > 0
        wr = w.at(t)
        count += int(wr) - int(rd)
        if count > peak:
            peak = count

    for t in range(start):
        step(t)
    # long-run writer rate <= reader rate, so the boundary occupancy is
    # non-increasing once reads stop starving; iterate hyperperiods until
    # the boundary state repeats, then the peak is final
    seen = set()
    t = start
    while count not in seen:
        seen.add(count)
        for _ in range(period):
            step(t)
            t += 1
    return peak


def delivered_reads(
    write: PeriodicWord, read: PeriodicWord, horizon_periods: int = 4
) -> PeriodicWord:
    """The word of *successful* reads (``rd = r(t) and count > 0``).

    This is the arrival clock downstream of a channel — feeding it into
    the next channel of a pipeline propagates rates through multi-hop
    topologies.  The result is ultimately periodic because the occupancy
    automaton reaches a periodic steady state.
    """
    w, r = write._aligned(read)
    start = len(w.prefix)
    period = len(w.cycle)
    count = 0
    bits: List[bool] = []
    boundary_counts: List[int] = []
    t = 0
    # iterate until the boundary occupancy repeats (or a safety cap for
    # diverging channels — then the tail is "every read delivers")
    cap = max(horizon_periods, 64)
    while True:
        if t >= start and (t - start) % period == 0:
            if count in boundary_counts:
                first = boundary_counts.index(count)
                prefix_len = start + first * period
                return PeriodicWord(
                    tuple(bits[:prefix_len]), tuple(bits[prefix_len:t])
                ).normalized()
            boundary_counts.append(count)
            if len(boundary_counts) > cap:
                # diverging: buffer never empties again; reads all succeed
                return PeriodicWord(tuple(bits[:t]), r.expand(start, period).cycle)
        rd = r.at(t) and count > 0
        wr = w.at(t)
        bits.append(rd)
        count += int(wr) - int(rd)
        t += 1


# ---------------------------------------------------------------------------
# Clock-word inference over a component
# ---------------------------------------------------------------------------


_MAX_SAMPLE_EXPANSION = 4096


def _modular_counter(eq: Equation) -> Optional[Tuple[int, int]]:
    """Recognize ``x := (pre i x + 1) mod m`` -> ``(i, m)``.

    This is the state equation of :func:`repro.lang.stdlib.clock_divider`
    and of the modular producers in :mod:`repro.designs`.
    """
    e = eq.expr
    if not (isinstance(e, App) and e.op == "mod" and len(e.args) == 2):
        return None
    body, m = e.args
    if not (isinstance(m, Const) and isinstance(m.value, int) and m.value > 0):
        return None
    if not (isinstance(body, App) and body.op == "+" and len(body.args) == 2):
        return None
    p, one = body.args
    if isinstance(one, Pre):  # allow 1 + pre i x as well
        p, one = one, p
    if not (isinstance(one, Const) and one.value == 1):
        return None
    if not (
        isinstance(p, Pre)
        and p.init is not None
        and isinstance(p.expr, Var)
        and p.expr.name == eq.target
    ):
        return None
    return int(p.init), int(m.value)


class WordInference:
    """Presence-abstract interpretation: signal -> PeriodicWord (or None)."""

    def __init__(self, comp: Component, rates: Mapping[str, PeriodicWord]):
        self.comp = comp
        self.words: Dict[str, PeriodicWord] = {}
        self.equations: Dict[str, Equation] = {}
        for eq in comp.equations():
            # multi-driver components are racy (SIG002); first writer wins
            self.equations.setdefault(eq.target, eq)
        for name, word in rates.items():
            if name in comp.signals():
                self.words[name] = word
        self._run()

    def _run(self) -> None:
        changed = True
        rounds = 0
        while changed and rounds < 2 * (len(self.comp.statements) + 1):
            changed = False
            rounds += 1
            for eq in self.comp.equations():
                if eq.target in self.words:
                    continue
                word = self._clock_word(eq.expr)
                if word is not None:
                    self.words[eq.target] = word
                    changed = True
            for sc in self.comp.sync_constraints():
                known = [n for n in sc.names if n in self.words]
                if known and len(known) < len(sc.names):
                    w = self.words[known[0]]
                    for n in sc.names:
                        if n not in self.words:
                            self.words[n] = w
                            changed = True

    # -- clock of an expression --------------------------------------------

    def _clock_word(self, expr: Expr) -> Optional[PeriodicWord]:
        if isinstance(expr, Var):
            return self.words.get(expr.name)
        if isinstance(expr, Const):
            return None  # context-clocked: no clock of its own
        if isinstance(expr, (Pre, ClockOf)):
            return self._clock_word(expr.expr)
        if isinstance(expr, Default):
            left = self._clock_word(expr.left)
            right = self._clock_word(expr.right)
            if left is None or right is None:
                return None
            return (left | right).normalized()
        if isinstance(expr, When):
            sample = self._sample_word(expr.cond)
            if sample is None:
                return None
            base = self._clock_word(expr.expr)
            if base is None:
                if isinstance(expr.expr, Const):
                    # `const when c`: clocked by the sample alone
                    return sample.normalized()
                return None
            return (base & sample).normalized()
        if isinstance(expr, App):
            # synchronous operands: any known operand word is the clock
            for arg in expr.args:
                word = self._clock_word(arg)
                if word is not None:
                    return word
            return None
        return None

    # -- instants where a boolean condition is present and true -------------

    def _sample_word(self, cond: Expr, depth: int = 0) -> Optional[PeriodicWord]:
        if depth > 8:
            return None
        if isinstance(cond, Const):
            return None  # handled by the caller via the base clock
        if isinstance(cond, Var):
            eq = self.equations.get(cond.name)
            if eq is None:
                return None
            return self._sample_word(eq.expr, depth + 1)
        if isinstance(cond, When) and isinstance(cond.expr, Const):
            # `true when e` / `false when e`
            if cond.expr.value is True:
                inner = self._sample_word(cond.cond, depth + 1)
                if inner is not None:
                    return inner
                return self._clock_word(cond.cond)
            if cond.expr.value is False:
                return PeriodicWord.never()
        if isinstance(cond, Default):
            left = self._sample_word(cond.left, depth + 1)
            right = self._sample_word(cond.right, depth + 1)
            if left is not None and right is not None:
                return (left | right).normalized()
            return None
        if isinstance(cond, App) and cond.op == "==" and len(cond.args) == 2:
            a, b = cond.args
            if isinstance(a, Const):
                a, b = b, a
            if isinstance(a, Var) and isinstance(b, Const):
                return self._counter_sample(a.name, int(b.value))
        return None

    def _counter_sample(self, name: str, k: int) -> Optional[PeriodicWord]:
        """Word of instants where modular counter ``name`` equals ``k``."""
        eq = self.equations.get(name)
        if eq is None:
            return None
        counter = _modular_counter(eq)
        if counter is None:
            return None
        init, modulus = counter
        base = self.words.get(name)
        if base is None:
            return None
        # the counter's value at its n-th present instant is (init+1+n) mod m;
        # expand over a window long enough for presence-count to wrap
        prefix_len = len(base.prefix)
        cycle_len = len(base.cycle) * modulus
        if prefix_len + cycle_len > _MAX_SAMPLE_EXPANSION:
            return None
        bits: List[bool] = []
        n = 0
        for t in range(prefix_len + cycle_len):
            present = base.at(t)
            bits.append(present and (init + 1 + n) % modulus == k % modulus)
            if present:
                n += 1
        return PeriodicWord(
            tuple(bits[:prefix_len]), tuple(bits[prefix_len:])
        ).normalized()


def infer_clock_words(
    comp: Component, rates: Mapping[str, PeriodicWord]
) -> Dict[str, PeriodicWord]:
    """Clock words for every signal derivable from the given input rates."""
    return dict(WordInference(comp, rates).words)
