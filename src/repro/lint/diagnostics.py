"""Diagnostic model of the static analyzer.

A :class:`Diagnostic` is one finding: a stable rule code (``SIG0xx`` for
single-clocked/synchronous rules, ``GALS0xx`` for rules about the
asynchronous deployment), a severity, a human message and — when the
program came from source text — a :class:`~repro.lang.ast.Span`.

A :class:`LintReport` is an ordered collection of findings with renderers
for the three output formats of ``repro lint``:

- ``text`` — one ``file:line:col: severity[CODE] message`` line each;
- ``json`` — a machine-readable object (stable key order);
- ``sarif`` — minimal SARIF 2.1.0, consumable by code-scanning UIs.

Per-rule suppression is prefix-based: ``--select SIG`` keeps only the
synchronous rules, ``--ignore GALS003`` drops the buffer-bound infos.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.lang.ast import Span

ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

_SARIF_LEVEL = {ERROR: "error", WARNING: "warning", INFO: "note"}


class Rule(NamedTuple):
    """One entry of the rule catalogue (see ``docs/static-analysis.md``)."""

    code: str
    severity: str
    title: str
    fixable: bool = False


RULES: Dict[str, Rule] = {
    r.code: r
    for r in [
        Rule("SIG001", WARNING, "design is not input-deterministic "
                                "(free clocks need an oracle)"),
        Rule("SIG002", ERROR, "signal written by more than one equation "
                              "(multi-driver race)"),
        Rule("SIG003", ERROR, "instantaneous dependency cycle "
                              "(no reaction order exists)"),
        Rule("SIG004", ERROR, "uninitialized pre (no initial value)",
             fixable=True),
        Rule("SIG005", WARNING, "dead signal (defined but never read)"),
        Rule("SIG006", WARNING, "unused input", fixable=True),
        Rule("SIG007", ERROR, "undefined signal (non-input without a "
                              "defining equation)"),
        Rule("SIG008", WARNING, "dead clock (signal provably never present)"),
        Rule("GALS001", ERROR, "inter-node instantaneous cycle through "
                               "FIFO-free channel edges"),
        Rule("GALS002", ERROR, "write-write race across GALS domain "
                               "boundaries (shared signal has several "
                               "producing nodes)"),
        Rule("GALS003", INFO, "static FIFO capacity bound inferred from "
                              "affine clocks"),
        Rule("GALS004", WARNING, "declared channel capacity below the "
                                 "static bound"),
        Rule("GALS005", WARNING, "channel unbounded under the assumed "
                                 "rates (writer outpaces reader)"),
    ]
}


class Diagnostic(NamedTuple):
    code: str
    severity: str
    message: str
    component: str = ""          # component name, or "" for program level
    signal: str = ""             # primary signal, or ""
    span: Optional[Span] = None  # source region, when parsed from text
    file: str = ""               # source path, or "" for built designs

    def location(self) -> str:
        """``file:line:col`` when a span is known, else what is known."""
        parts = [self.file or "<design>"]
        if self.span is not None:
            parts.append(str(self.span.line))
            parts.append(str(self.span.column))
        return ":".join(parts)

    def render(self) -> str:
        where = self.location()
        scope = " ({})".format(self.component) if self.component else ""
        return "{}: {}[{}]{} {}".format(
            where, self.severity, self.code, scope, self.message
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "component": self.component,
            "signal": self.signal,
            "file": self.file,
        }
        if self.span is not None:
            out["line"] = self.span.line
            out["column"] = self.span.column
            out["end_line"] = self.span.end_line
            out["end_column"] = self.span.end_column
        return out


def make(
    code: str,
    message: str,
    component: str = "",
    signal: str = "",
    span: Optional[Span] = None,
    file: str = "",
) -> Diagnostic:
    """Build a diagnostic with the severity of its registered rule."""
    rule = RULES[code]
    return Diagnostic(code, rule.severity, message, component, signal, span, file)


def _matches(code: str, prefixes: Sequence[str]) -> bool:
    return any(code.startswith(p) for p in prefixes)


class LintReport:
    """An ordered, renderable set of diagnostics for one program."""

    def __init__(self, program: str, diagnostics: Iterable[Diagnostic]):
        self.program = program
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(diagnostics)

    # -- selection ----------------------------------------------------------

    def filter(
        self,
        select: Sequence[str] = (),
        ignore: Sequence[str] = (),
    ) -> "LintReport":
        """Keep codes matching a ``select`` prefix (all, when empty) and not
        matching any ``ignore`` prefix."""
        kept = [
            d
            for d in self.diagnostics
            if (not select or _matches(d.code, select))
            and not _matches(d.code, ignore)
        ]
        return LintReport(self.program, kept)

    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(ERROR)

    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    # -- renderers ----------------------------------------------------------

    def render_text(self) -> str:
        if not self.diagnostics:
            return "{}: clean (no findings)".format(self.program)
        lines = [d.render() for d in self.diagnostics]
        counts = {
            sev: len(self.by_severity(sev))
            for sev in SEVERITIES
            if self.by_severity(sev)
        }
        summary = ", ".join(
            "{} {}{}".format(n, sev, "s" if n != 1 else "")
            for sev, n in counts.items()
        )
        lines.append("{}: {}".format(self.program, summary))
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "program": self.program,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_sarif(self) -> str:
        """Minimal SARIF 2.1.0: one run, rule metadata, physical locations."""
        used = sorted({d.code for d in self.diagnostics})
        rules = [
            {
                "id": code,
                "shortDescription": {"text": RULES[code].title},
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL[RULES[code].severity]
                },
            }
            for code in used
        ]
        results = []
        for d in self.diagnostics:
            result: Dict[str, object] = {
                "ruleId": d.code,
                "level": _SARIF_LEVEL[d.severity],
                "message": {"text": d.message},
            }
            location: Dict[str, object] = {
                "artifactLocation": {"uri": d.file or "<design>"}
            }
            if d.span is not None:
                location["region"] = {
                    "startLine": d.span.line,
                    "startColumn": d.span.column,
                    "endLine": d.span.end_line,
                    "endColumn": d.span.end_column,
                }
            result["locations"] = [{"physicalLocation": location}]
            results.append(result)
        sarif = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri":
                                "docs/static-analysis.md",
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(sarif, indent=2, sort_keys=True)
