"""Diagnostic model of the static analyzer.

A :class:`Diagnostic` is one finding: a stable rule code (``SIG0xx`` for
single-clocked/synchronous rules, ``GALS0xx`` for rules about the
asynchronous deployment), a severity, a human message and — when the
program came from source text — a :class:`~repro.lang.ast.Span`.

A :class:`LintReport` is an ordered collection of findings with renderers
for the three output formats of ``repro lint``:

- ``text`` — one ``file:line:col: severity[CODE] message`` line each;
- ``json`` — a machine-readable object (stable key order);
- ``sarif`` — minimal SARIF 2.1.0, consumable by code-scanning UIs.

Per-rule suppression is prefix-based: ``--select SIG`` keeps only the
synchronous rules, ``--ignore GALS003`` drops the buffer-bound infos.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.lang.ast import Span

ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

_SARIF_LEVEL = {ERROR: "error", WARNING: "warning", INFO: "note"}


class Rule(NamedTuple):
    """One entry of the rule catalogue (see ``docs/static-analysis.md``)."""

    code: str
    severity: str
    title: str
    fixable: bool = False
    detail: str = ""      # SARIF fullDescription; falls back to the title

    @property
    def help_uri(self) -> str:
        """Stable per-rule anchor into the rule catalogue docs."""
        return "docs/static-analysis.md#{}".format(self.code.lower())


RULES: Dict[str, Rule] = {
    r.code: r
    for r in [
        Rule("SIG001", WARNING, "design is not input-deterministic "
                                "(free clocks need an oracle)",
             detail="Some clocks are determined by neither the inputs nor "
                    "the clock calculus; simulation needs an oracle to "
                    "resolve them and two runs on the same inputs may "
                    "differ."),
        Rule("SIG002", ERROR, "signal written by more than one equation "
                              "(multi-driver race)",
             detail="Two equations define the same signal; at any instant "
                    "both fire, the reaction is ill-formed."),
        Rule("SIG003", ERROR, "instantaneous dependency cycle "
                              "(no reaction order exists)",
             detail="A cycle of same-instant dependencies admits no "
                    "evaluation order; break it with a pre (delay)."),
        Rule("SIG004", ERROR, "uninitialized pre (no initial value)",
             fixable=True,
             detail="A pre without an initial value reads undefined memory "
                    "at the first instant of its clock."),
        Rule("SIG005", WARNING, "dead signal (defined but never read)",
             detail="The signal is computed but nothing consumes it."),
        Rule("SIG006", WARNING, "unused input", fixable=True,
             detail="The declared input occurs in no equation."),
        Rule("SIG007", ERROR, "undefined signal (non-input without a "
                              "defining equation)",
             detail="The signal is read but neither an input nor defined "
                    "by any equation."),
        Rule("SIG008", WARNING, "dead clock (signal provably never present)",
             detail="The clock calculus proves the signal's clock empty: "
                    "it can never be present."),
        Rule("GALS001", ERROR, "inter-node instantaneous cycle through "
                               "FIFO-free channel edges",
             detail="Nodes depend on each other within one instant along "
                    "edges that desynchronization will not buffer; the "
                    "deployed network can deadlock."),
        Rule("GALS002", ERROR, "write-write race across GALS domain "
                               "boundaries (shared signal has several "
                               "producing nodes)",
             detail="More than one node produces the shared signal, so the "
                    "desynchronized channels race on writes."),
        Rule("GALS003", INFO, "static FIFO capacity bound inferred from "
                              "affine clocks",
             detail="Under the assumed rates the channel's peak occupancy "
                    "is bounded; a FIFO of this capacity never overflows "
                    "on these rates."),
        Rule("GALS004", WARNING, "declared channel capacity below the "
                                 "static bound",
             detail="The deployed capacity is smaller than the statically "
                    "inferred peak occupancy; writes will be rejected."),
        Rule("GALS005", WARNING, "channel unbounded under the assumed "
                                 "rates (writer outpaces reader)",
             detail="The writer's long-run rate exceeds the reader's; no "
                    "finite FIFO suffices."),
        Rule("GALS006", INFO, "flow equivalence PROVEN for the channel "
                              "(inductive occupancy argument)",
             detail="The occupancy induction over the affine clock words "
                    "discharges the channel: under the assumed rates the "
                    "deployed FIFO never rejects a write, so the "
                    "desynchronized flow equals the synchronous one for "
                    "every input stream at these rates.  Upgrades the "
                    "GALS003 bound from inferred to proven."),
        Rule("GALS007", ERROR, "flow equivalence REFUTED for the channel "
                               "(overflow witness found)",
             detail="The occupancy induction exhibits a concrete instant "
                    "at which the deployed FIFO rejects a write under the "
                    "assumed rates; the refutation witness replays in "
                    "repro.sim (repro prove --replay) and the deployment "
                    "is not flow-equivalent to the source."),
    ]
}


class Diagnostic(NamedTuple):
    code: str
    severity: str
    message: str
    component: str = ""          # component name, or "" for program level
    signal: str = ""             # primary signal, or ""
    span: Optional[Span] = None  # source region, when parsed from text
    file: str = ""               # source path, or "" for built designs

    def location(self) -> str:
        """``file:line:col`` when a span is known, else what is known."""
        parts = [self.file or "<design>"]
        if self.span is not None:
            parts.append(str(self.span.line))
            parts.append(str(self.span.column))
        return ":".join(parts)

    def render(self) -> str:
        where = self.location()
        scope = " ({})".format(self.component) if self.component else ""
        return "{}: {}[{}]{} {}".format(
            where, self.severity, self.code, scope, self.message
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "component": self.component,
            "signal": self.signal,
            "file": self.file,
        }
        if self.span is not None:
            out["line"] = self.span.line
            out["column"] = self.span.column
            out["end_line"] = self.span.end_line
            out["end_column"] = self.span.end_column
        return out


def make(
    code: str,
    message: str,
    component: str = "",
    signal: str = "",
    span: Optional[Span] = None,
    file: str = "",
) -> Diagnostic:
    """Build a diagnostic with the severity of its registered rule."""
    rule = RULES[code]
    return Diagnostic(code, rule.severity, message, component, signal, span, file)


def _matches(code: str, prefixes: Sequence[str]) -> bool:
    return any(code.startswith(p) for p in prefixes)


class LintReport:
    """An ordered, renderable set of diagnostics for one program."""

    def __init__(self, program: str, diagnostics: Iterable[Diagnostic]):
        self.program = program
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(diagnostics)

    # -- selection ----------------------------------------------------------

    def filter(
        self,
        select: Sequence[str] = (),
        ignore: Sequence[str] = (),
    ) -> "LintReport":
        """Keep codes matching a ``select`` prefix (all, when empty) and not
        matching any ``ignore`` prefix."""
        kept = [
            d
            for d in self.diagnostics
            if (not select or _matches(d.code, select))
            and not _matches(d.code, ignore)
        ]
        return LintReport(self.program, kept)

    def by_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(ERROR)

    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    # -- renderers ----------------------------------------------------------

    def render_text(self) -> str:
        if not self.diagnostics:
            return "{}: clean (no findings)".format(self.program)
        lines = [d.render() for d in self.diagnostics]
        counts = {
            sev: len(self.by_severity(sev))
            for sev in SEVERITIES
            if self.by_severity(sev)
        }
        summary = ", ".join(
            "{} {}{}".format(n, sev, "s" if n != 1 else "")
            for sev, n in counts.items()
        )
        lines.append("{}: {}".format(self.program, summary))
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "program": self.program,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_sarif(self) -> str:
        """Minimal SARIF 2.1.0: one run, rule metadata, physical locations.

        Byte-deterministic: the rule array is sorted by rule id, results
        keep report order, and the serializer sorts keys — two runs over
        the same findings emit identical bytes.
        """
        used = sorted({d.code for d in self.diagnostics})
        rules = [
            {
                "id": code,
                "shortDescription": {"text": RULES[code].title},
                "fullDescription": {
                    "text": RULES[code].detail or RULES[code].title
                },
                "helpUri": RULES[code].help_uri,
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL[RULES[code].severity]
                },
            }
            for code in used
        ]
        results = []
        for d in self.diagnostics:
            result: Dict[str, object] = {
                "ruleId": d.code,
                "level": _SARIF_LEVEL[d.severity],
                "message": {"text": d.message},
            }
            location: Dict[str, object] = {
                "artifactLocation": {"uri": d.file or "<design>"}
            }
            if d.span is not None:
                location["region"] = {
                    "startLine": d.span.line,
                    "startColumn": d.span.column,
                    "endLine": d.span.end_line,
                    "endColumn": d.span.end_column,
                }
            result["locations"] = [{"physicalLocation": location}]
            results.append(result)
        sarif = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri":
                                "docs/static-analysis.md",
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(sarif, indent=2, sort_keys=True)
