"""Static desync-safety analysis (``repro lint``).

A millisecond-scale static pass that proves — or refutes with a concrete
witness — the properties the rest of the toolkit otherwise establishes by
simulation and model checking: clock determinism (endochrony), freedom
from write races, network-level causality, and sufficient FIFO capacity
under affine clock assumptions.

Public surface:

- :func:`lint_program` / :func:`lint_network` — run the rule set;
- :class:`LintReport` / :class:`Diagnostic` — findings + renderers
  (text, JSON, SARIF 2.1.0);
- :class:`PeriodicWord`, :func:`channel_bound`, :func:`infer_clock_words`
  — the affine buffer-bound machinery;
- :func:`fix_program` — the ``--fix`` autofixes;
- :data:`RULES` — the rule catalogue (stable codes, severities).
"""

from repro.lint.bounds import (
    PeriodicWord,
    channel_bound,
    delivered_reads,
    infer_clock_words,
)
from repro.lint.diagnostics import (
    ERROR,
    INFO,
    RULES,
    WARNING,
    Diagnostic,
    LintReport,
    Rule,
    make,
)
from repro.lint.engine import lint_network, lint_program, parse_rates
from repro.lint.fixes import fix_component, fix_program

__all__ = [
    "Diagnostic",
    "ERROR",
    "INFO",
    "LintReport",
    "PeriodicWord",
    "RULES",
    "Rule",
    "WARNING",
    "channel_bound",
    "delivered_reads",
    "fix_component",
    "fix_program",
    "infer_clock_words",
    "lint_network",
    "lint_program",
    "make",
    "parse_rates",
]
