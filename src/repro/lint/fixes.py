"""Mechanical fixes for the two fixable rules (``repro lint --fix``).

- SIG004 — uninitialized ``pre``: insert a type-appropriate initial value
  (``false`` for boolean/event operands, ``0`` for integers);
- SIG006 — unused input: drop the declaration.

Both fixes are idempotent: applying them to an already-fixed program is a
no-op, which the test suite checks.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import SignalTypeError
from repro.lang.ast import Component, Equation, Expr, Pre, Program
from repro.lang.typecheck import infer_type
from repro.lang.types import BOOL, EVENT, INT


def _default_init(operand: Expr, env) -> object:
    try:
        ty = infer_type(operand, env)
    except SignalTypeError:
        return 0  # nested uninitialized pre, or untypeable: integer default
    if ty is BOOL or ty is EVENT:
        return False
    return 0


def _fix_pre(expr: Expr, env, counter) -> Expr:
    if isinstance(expr, Pre) and expr.init is None:
        counter[0] += 1
        return Pre(
            _default_init(expr.expr, env),
            _fix_pre(expr.expr, env, counter),
        )
    return expr.map_children(lambda e: _fix_pre(e, env, counter))


def fix_component(comp: Component) -> Tuple[Component, int]:
    """Apply both fixes to one component; returns ``(fixed, n_changes)``."""
    env = comp.signals()
    counter = [0]
    statements = []
    for st in comp.statements:
        if isinstance(st, Equation):
            fixed = _fix_pre(st.expr, env, counter)
            statements.append(
                Equation(st.target, fixed, span=st.span)
                if fixed is not st.expr
                else st
            )
        else:
            statements.append(st)

    read = set()
    for st in statements:
        read |= set(st.free_vars())
    inputs = dict(comp.inputs)
    removed = [n for n in inputs if n not in read]
    for name in removed:
        del inputs[name]
        counter[0] += 1

    if not counter[0]:
        return comp, 0
    return (
        Component(comp.name, inputs, comp.outputs, comp.locals, statements),
        counter[0],
    )


def fix_program(program: Program) -> Tuple[Program, int]:
    """Apply both fixes across a program; returns ``(fixed, n_changes)``."""
    total = 0
    components = []
    for comp in program.components:
        fixed, n = fix_component(comp)
        total += n
        components.append(fixed)
    if not total:
        return program, 0
    return Program(program.name, components), total
