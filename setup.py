"""Setup shim so that ``pip install -e .`` works without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables the legacy
editable-install path on environments that lack ``wheel``.
"""

from setuptools import setup

setup()
