"""A GALS avionics-style acquisition pipeline.

The paper motivates desynchronization with distributed real-time systems
(and cites avionics modeling in Signal).  This example builds a three-
island pipeline:

    sensor (fast, bursty)  ->  filter (moving average)  ->  display (slow)

and runs it three ways:

1. fully synchronous (the design-time reference);
2. desynchronized inside the multi-clock synchronous framework, with
   FIFO channels sized by the Section 5.2 estimation loop;
3. deployed as an asynchronous GALS network with jittered local clocks,
   with blocking backpressure on the display link.

The filter's output flow is identical in all three runs — the property
the desynchronization theorems promise.

Run:  python examples/avionics_pipeline.py
"""

from repro.desync import desynchronize, estimate_buffer_sizes
from repro.gals import AsyncNetwork, schedules
from repro.lang.ast import Program, pre
from repro.lang.builder import ComponentBuilder
from repro.lang.types import EVENT, INT
from repro.sim import simulate, stimuli


def sensor():
    """Emits a synthetic measurement ramp at its local clock."""
    b = ComponentBuilder("Sensor")
    act = b.input("s_act", EVENT)
    raw = b.output("raw", INT)
    b.define(raw, (pre(0, raw) + 7) % 100)
    b.sync(raw, act)
    return b.build()


def smoother():
    """2-tap moving average over the measurement stream (data-driven)."""
    b = ComponentBuilder("Filter")
    raw = b.input("raw", INT)
    smooth = b.output("smooth", INT)
    b.define(smooth, (raw + pre(0, raw)) / 2)
    return b.build()


def display():
    """Tracks the last smoothed value and a frame counter (data-driven)."""
    b = ComponentBuilder("Display")
    smooth = b.input("smooth", INT)
    frame = b.output("frame", INT)
    shown = b.output("shown", INT)
    b.define(shown, smooth)
    b.define(frame, pre(0, frame) + 1)
    b.sync(frame, smooth)
    return b.build()


def pipeline_program():
    return Program("avionics", [sensor(), smoother(), display()])


def program():
    """Lint entry point (``repro lint examples/avionics_pipeline.py``)."""
    return pipeline_program()


def main():
    prog = pipeline_program()

    # -- 1. synchronous reference -------------------------------------------
    sync_trace = simulate(prog, stimuli.periodic("s_act", 1), n=40)
    print("== synchronous reference (first 10 instants) ==")
    print(sync_trace.behavior().up_to(9).render(["raw", "smooth", "shown", "frame"]))
    ref_flow = sync_trace.values("shown")

    # -- 2. desynchronized multi-clock program -------------------------------
    def env():
        return stimuli.merge(
            stimuli.bursty("s_act", burst=4, gap=4),
            stimuli.periodic("raw_rreq", 2),
            stimuli.periodic("smooth_rreq", 2, phase=1),
        )

    report = estimate_buffer_sizes(prog, env, horizon=80, initial=1)
    print("\n== channel sizing (Section 5.2) ==")
    print(report.render())

    res = desynchronize(prog, capacities=report.sizes)
    desync_trace = simulate(res.program, env(), n=40)
    desync_flow = list(desync_trace.values("shown"))
    print("\ndesynchronized 'shown' flow:", desync_flow[:10])
    assert desync_flow == ref_flow[: len(desync_flow)], "flow equivalence violated!"

    # -- 3. GALS deployment with jittered clocks and backpressure -------------
    net = AsyncNetwork.from_program(
        prog,
        schedules={"Sensor": schedules.periodic(1.0, jitter=0.2, seed=42)},
        policy="block",
        capacities={"raw": report.sizes.get("raw", 2),
                    "smooth": report.sizes.get("smooth", 2)},
    )
    gals_trace = net.run(horizon=20.0)
    gals_flow = list(gals_trace.values("shown"))
    print("\n== GALS deployment ==")
    print("firings:", gals_trace.firings)
    print("channel stats:")
    for name, stats in gals_trace.channels.items():
        print("  {}: peak={} losses={} pending={}".format(
            name, stats["peak"], stats["losses"], stats["pending"]))
    print("GALS 'shown' flow:   ", gals_flow[:10])
    print("reference flow:      ", ref_flow[:10])

    n = min(len(gals_flow), len(ref_flow))
    assert gals_flow[:n] == ref_flow[:n], "flow equivalence violated!"
    print("\nflow equivalence holds across all three executions "
          "({} samples compared)".format(n))


if __name__ == "__main__":
    main()
