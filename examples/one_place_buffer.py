"""Example 1 / Figure 2 of the paper: the one-place buffer.

Builds the paper's 1-place FIFO (write blocked when full, read offered
when full, first-in-first-out causality) and prints a sample behavior
table in the style of Figure 2, plus the textual Signal source of the
generated component.

Run:  python examples/one_place_buffer.py
"""

from repro.desync import one_place_fifo
from repro.lang import format_component
from repro.sim import Reactor, SimTrace


def program():
    """Lint entry point (``repro lint examples/one_place_buffer.py``)."""
    comp, _ports = one_place_fifo()
    return comp


def main():
    comp, ports = one_place_fifo()

    print("== generated Signal source (Example 1, executable dialect) ==")
    print(format_component(comp))

    # A sample behavior like Figure 2: interleaved writes and reads,
    # including a write attempt on a full buffer (alarm) and a read from
    # an empty one (silently refused).
    accesses = [
        {"msgin": 1},                 # write 1            -> ok, full
        {"rreq": True},               # read               -> msgout = 1
        {"msgin": 3},                 # write 3            -> ok, full
        {"msgin": 4},                 # write 4 while full -> alarm, lost
        {"msgin": 5, "rreq": True},   # read 3 + write 5   -> alarm (paper rule)
        {"rreq": True},               # read on empty      -> nothing
        {"msgin": 6},                 # write 6            -> ok
        {"rreq": True},               # read               -> msgout = 6
    ]
    reactor = Reactor(comp)
    trace = SimTrace()
    for row in accesses:
        trace.append(reactor.react(row))

    print("\n== sample behavior (Figure 2 layout) ==")
    print(trace.render(["msgin", ports.ok, ports.alarm, ports.full, "msgout"]))
    print("\ndelivered flow:", trace.values("msgout"))
    print("write flow:    ", trace.values("msgin"))
    print("(4 and 5 were rejected with an alarm; the FIFO never reorders)")


if __name__ == "__main__":
    main()
