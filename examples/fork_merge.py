"""Copy/fork and merge/join adapters (Section 4.2, closing remark).

The paper's desynchronization assumes single-producer/single-consumer
channels and points at copy (fork) and merge (join) components for
everything else.  This example builds a diamond:

            +-> worker A (x2) --+
   source --+                   +--> sink (merge, A wins ties)
            +-> worker B (x10) -+

and shows (1) the synchronous diamond, (2) its desynchronization — the
fork becomes two independent FIFO channels, the merge serializes the
workers — and (3) the channel-level theorem checks on the observed run.

Run:  python examples/fork_merge.py
"""

from repro.designs import producer
from repro.gals import fork_component, merge_component
from repro.lang import Program, check_program
from repro.lang.builder import ComponentBuilder
from repro.lang.types import INT
from repro.desync import check_theorem2, desynchronize
from repro.sim import simulate, stimuli


def worker(name, inp, out, scale):
    b = ComponentBuilder(name)
    v = b.input(inp, INT)
    o = b.output(out, INT)
    b.define(o, v * scale)
    return b.build()


def diamond():
    return Program(
        "diamond",
        [
            producer(out="src"),
            fork_component("src", ["toA", "toB"], name="Fork"),
            worker("A", "toA", "fromA", scale=2),
            worker("B", "toB", "fromB", scale=10),
            merge_component(["fromA", "fromB"], "sink", name="Join"),
        ],
    )


def program():
    """Lint entry point (``repro lint examples/fork_merge.py``)."""
    return diamond()


def main():
    prog = diamond()
    check_program(prog)

    print("== synchronous diamond ==")
    trace = simulate(prog, stimuli.periodic("p_act", 1), n=6)
    print(trace.render(["src", "fromA", "fromB", "sink"]))
    print("(A and B fire together; the merge's priority picks A)")

    print("\n== desynchronized diamond ==")
    res = desynchronize(prog, capacities=2)
    for ch in res.channels:
        print("  channel {}: {} -> {} (rreq {})".format(
            ch.signal, ch.producer, ch.consumer, ch.rreq))
    # drive: producer every third instant; A's path polled every instant,
    # B's every other one (both keep up with the source on average)
    stim = stimuli.merge(
        stimuli.periodic("p_act", 3),
        stimuli.periodic(res.channel_for("src").rreq, 1),
        stimuli.periodic(res.channel_for("toA").rreq, 1),
        stimuli.periodic(res.channel_for("toB").rreq, 2),
        stimuli.periodic(res.channel_for("fromA").rreq, 1),
        stimuli.periodic(res.channel_for("fromB").rreq, 1),
    )
    trace = simulate(res.program, stim, n=24)
    print("sink flow:", list(trace.values("sink"))[:10])

    print("\n== Theorem 2 on the observed run ==")
    ok, verdicts = check_theorem2(
        trace,
        [(ch.write_port, ch.read_port, ch.capacity) for ch in res.channels],
    )
    for v in verdicts:
        print("  {} -> {}: fifo={} within_bound={} minimal_depth={}".format(
            v.write, v.read, v.is_fifo, v.within_bound, v.minimal))
    print("network faithful:", ok)


if __name__ == "__main__":
    main()
