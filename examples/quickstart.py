"""Quickstart: the full paper methodology on a producer/consumer design.

1. write a multi-component synchronous (Signal) program;
2. simulate its synchronous composition;
3. desynchronize it: every inter-component data dependency becomes a
   bounded FIFO channel (Theorems 1-2);
4. estimate the buffer sizes with the instrumented FIFOs (Section 5.2);
5. model-check that no alarm is ever raised under the environment
   assumption (the verification phase of Section 5.2).

Run:  python examples/quickstart.py
"""

from repro.designs import modular_producer_consumer, producer_consumer
from repro.desync import desynchronize, estimate_buffer_sizes
from repro.mc import check_never_present, compile_lts
from repro.sim import simulate, stimuli
from repro.workloads import bursty_producer


def program():
    """Lint entry point (``repro lint examples/quickstart.py``)."""
    return producer_consumer()


def main():
    # -- 1+2. the synchronous reference -------------------------------------
    program = producer_consumer()
    sync_trace = simulate(program, stimuli.periodic("p_act", 1), n=8)
    print("== synchronous composition (single clock) ==")
    print(sync_trace.render(["p_act", "x", "y"]))

    # -- 3. desynchronize ----------------------------------------------------
    env = bursty_producer(burst=3, gap=3, reader_period=2)
    res = desynchronize(program, capacities=1)
    trace = simulate(res.program, env.stimulus(), n=24)
    ch = res.channels[0]
    print("\n== desynchronized, FIFO capacity 1, bursty producer ==")
    print(trace.render(["x__w", ch.alarm, "x__r", "y"]))
    print("alarms: {}".format(trace.presence_count(ch.alarm)))

    # -- 4. estimate buffer sizes (Figure 4 instrumentation) -----------------
    report = estimate_buffer_sizes(
        program, env.stimulus_factory, horizon=60, initial=1
    )
    print("\n== buffer-size estimation ==")
    print(report.render())

    # -- 5. verify: no alarm reachable under the environment assumption ------
    finite = modular_producer_consumer(modulus=2)
    sized = desynchronize(finite, capacities=report.sizes)
    # environment: bursts of <= 3 writes between reads, modeled by the
    # alphabet (any mix of write/read/poll instants)
    alphabet = [
        {},
        {"p_act": True, "x_rreq": True},
        {"x_rreq": True},
    ]
    lts = compile_lts(sized.program, alphabet=alphabet)
    ce = check_never_present(lts, sized.channels[0].alarm)
    print("\n== model checking ({} states) ==".format(lts.num_states()))
    if ce is None:
        print("no alarm reachable when every write instant is polled: VERIFIED")
    else:
        print(ce.render())

    # and the free environment, where any finite buffer can overflow:
    free = [{}, {"p_act": True}, {"x_rreq": True}, {"p_act": True, "x_rreq": True}]
    lts_free = compile_lts(sized.program, alphabet=free)
    ce = check_never_present(lts_free, sized.channels[0].alarm)
    print("free environment counterexample (expected, {} instants):".format(len(ce)))
    print(ce.render())


if __name__ == "__main__":
    main()
