"""A tour of the Signal language frontend and the analysis toolchain.

Covers: parsing the textual dialect, pretty-printing, type checking,
clock calculus (synchrony classes, master clock, endochrony diagnosis),
causality analysis, core-form normalization, simulation against the
denotational semantics of Table 1, and equivalence checking of two
implementations with the model checker.

Run:  python examples/signal_language_tour.py
"""

import operator

from repro.clocks import analyze_clocks
from repro.lang import (
    check_component,
    format_component,
    normalize_component,
    parse_component,
)
from repro.lang.analysis import instantaneous_cycles
from repro.mc import compile_lts, trace_equivalent
from repro.sim import Reactor, simulate, stimuli
from repro.tags.denotation import in_default, in_func, in_pre, in_when

SOURCE = """
% A watchdog: counts ticks since the last kick; barks when the count
% exceeds a threshold carried by the (slower) configuration signal.
process Watchdog =
  ( ? event tick;
    ? event kick;
    ? integer limit;
    ! event bark;
  )
(| base := tick default kick default (^limit)
 | n := ((0 when kick) default ((pre 0 n) + 1 when tick) default (pre 0 n))
 | n ^= base
 | lim := limit default (pre 8 lim)
 | lim ^= base
 | bark := (true when (n > lim)) when tick
 |)
where
  event base;
  integer n, lim;
end
"""


def program():
    """Lint entry point (``repro lint examples/signal_language_tour.py``)."""
    return parse_component(SOURCE)


def main():
    comp = parse_component(SOURCE)
    check_component(comp)
    print("== parsed and type-checked; pretty-printed source ==")
    print(format_component(comp))

    print("\n== clock analysis ==")
    analysis = analyze_clocks(comp)
    print(analysis.render())
    print("input-deterministic (runs without an oracle):",
          analysis.is_input_deterministic())
    print("instantaneous cycles:", instantaneous_cycles(comp) or "none")

    print("\n== core-form normalization (Figure 1 syntax) ==")
    core = normalize_component(comp, to_core=True)
    print("equations before: {}, after: {}".format(
        len(comp.equations()), len(core.equations())))

    print("\n== simulation ==")
    stim = stimuli.merge(
        stimuli.periodic("tick", 1),
        stimuli.periodic("kick", 5),      # kicked every 5 ticks
        stimuli.periodic("limit", 12, values=iter([3, 2])),
    )
    trace = simulate(comp, stim, n=14)
    print(trace.render(["tick", "kick", "limit", "n", "bark"]))

    print("\n== Table 1 conformance spot-checks ==")
    b = trace.behavior(["n", "lim", "bark"])
    # n's `pre` inside the increment path makes a direct check awkward;
    # check the primitive operators on a dedicated component instead.
    prim = parse_component(
        "process Prim = (? integer a; ? integer c; ? boolean s;"
        " ! integer p; ! integer w; ! integer d; ! integer f;)"
        "(| p := pre 0 a | w := a when s | d := a default c"
        " | f := a + a |) end"
    )
    ptrace = simulate(
        prim,
        stimuli.merge(
            stimuli.bernoulli("a", 0.7, values=stimuli.counter(), seed=1),
            stimuli.bernoulli("c", 0.5, values=stimuli.counter(100), seed=2),
            stimuli.bernoulli("s", 0.6, values=iter([True, False] * 50), seed=3),
        ),
        n=30,
    )
    pb = ptrace.behavior(["a", "c", "s", "p", "w", "d", "f"])
    print("pre     in [[x = pre 0 a]]     :", in_pre(pb, "p", "a", 0))
    print("when    in [[x = a when s]]    :", in_when(pb, "w", "a", "s"))
    print("default in [[x = a default c]] :", in_default(pb, "d", "a", "c"))
    print("f       in [[x = a + a]]       :",
          in_func(pb, "f", ["a", "a"], operator.add))

    print("\n== equivalence of two adder implementations ==")
    direct = parse_component(
        "process A1 = (? integer a; ! integer s;) (| s := a + a |) end"
    )
    shifty = parse_component(
        "process A2 = (? integer a; ! integer s;) (| s := 2 * a |) end"
    )
    alphabet = [{}, {"a": 0}, {"a": 1}, {"a": 2}]
    d = trace_equivalent(
        compile_lts(direct, alphabet=alphabet),
        compile_lts(shifty, alphabet=alphabet),
    )
    print("a + a  vs  2 * a :", "equivalent" if d is None else d)


if __name__ == "__main__":
    main()
