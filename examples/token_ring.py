"""A GALS token ring: cyclic dependencies, invariants, liveness.

The ring closes a loop of data dependencies (the general network of
Theorem 2).  Each station stores an arriving token and forwards it,
incremented, on its next local tick.  This example:

1. simulates the synchronous ring and prints the token's lap trace;
2. model-checks the single-token invariant and shows the *real* bug the
   checker found during development: re-seeding a live ring used to
   inject a second token (the injector now latches its seed);
3. checks liveness: once seeded, the token's return is inevitable;
4. deploys the ring as a GALS network with independent jittered clocks
   and verifies the token still hops in order.

Run:  python examples/token_ring.py
"""

from repro.designs import token_ring
from repro.gals import AsyncNetwork, schedules
from repro.mc import check_invariant, compile_lts, inevitable
from repro.sim import simulate, stimuli


def program():
    """Lint entry point (``repro lint examples/token_ring.py``)."""
    return token_ring(stations=3)


def main():
    # -- 1. synchronous simulation -------------------------------------------
    prog = token_ring(stations=3)
    ticks = ["inj_tick", "s1_tick", "s2_tick", "s3_tick"]
    rows = []
    for t in range(14):
        row = {name: True for name in ticks}
        if t == 0:
            row["seed"] = True
        rows.append(row)
    trace = simulate(prog, stimuli.rows(rows), n=len(rows))
    print("== synchronous ring, token hops ==")
    print(trace.render(["seed", "tok0", "tok1", "tok2", "tok3"]))

    # -- 2. safety: exactly one token ------------------------------------------
    finite = token_ring(stations=1, modulus=4)
    alphabet = [
        {"inj_tick": True, "s1_tick": True},
        {"inj_tick": True, "s1_tick": True, "seed": True},  # seed anytime!
    ]
    lts = compile_lts(finite, alphabet=alphabet)
    ce = check_invariant(
        lts,
        lambda out: sum(1 for k in out if k.startswith("tok")) <= 1,
        name="at most one token in flight",
    )
    print("\n== model checking ({} states) ==".format(lts.num_states()))
    print("single-token invariant (seed offered at every instant):",
          "PROVEN" if ce is None else "VIOLATED\n" + ce.render())
    print("(an earlier injector accepted repeated seeds and the checker")
    print(" produced a two-token counterexample; the injector now latches)")

    # -- 3. liveness: the token keeps coming back ------------------------------
    seeded_alphabet = [{"inj_tick": True, "s1_tick": True, "seed": True}]
    lts2 = compile_lts(finite, alphabet=seeded_alphabet)
    lasso = inevitable(lts2, lambda out: "tok1" in out)
    print("token return inevitable once ticking:",
          "YES" if lasso is None else "NO:\n" + lasso.render())

    # -- 4. GALS deployment -----------------------------------------------------
    # Each station on its own jittered clock; the data-driven behavior of
    # the stations means tokens move at the pace of the slowest island.
    # (Channels are unbounded here: exactly one token is ever in flight.)
    net = AsyncNetwork.from_program(
        token_ring(stations=3),
        schedules={
            "Inject": schedules.periodic(1.0, jitter=0.2, seed=1),
            "S1": schedules.periodic(1.3, jitter=0.2, seed=2),
            "S2": schedules.periodic(0.7, jitter=0.2, seed=3),
            "S3": schedules.periodic(1.9, jitter=0.2, seed=4),
        },
        activations={
            "Inject": "inj_tick",
            "S1": "s1_tick",
            "S2": "s2_tick",
            "S3": "s3_tick",
        },
    )
    # seed by hand: push a token into the Inject node's seed... the seed is
    # an environment event; emulate it by a one-shot schedule on a tiny
    # helper — simplest is to give Inject a first reaction with seed via a
    # dedicated pre-run reaction:
    net._reactors["Inject"].react({"seed": True})
    gals = net.run(horizon=30.0)
    print("\n== GALS deployment ==")
    print("firings:", gals.firings)
    toks = list(gals.values("tok0__w"))
    print("tok0 values seen at the injector output:", toks[:8])
    assert toks == sorted(toks), "token order broken!"
    print("token hops stay ordered under jittered island clocks")


if __name__ == "__main__":
    main()
