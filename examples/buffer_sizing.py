"""The complete Section 5.2 design flow, including the feedback loop.

    estimate buffer sizes by simulation (instrumented FIFOs, Figure 4)
        -> model-check "no alarm is ever raised"
        -> on failure, add the error trace to the simulation data
        -> re-estimate, re-verify, iterate.

Two environments are explored:

- a *polled* environment (the consumer offers a read at every instant a
  write may occur): the loop converges and the sizes are PROVEN;
- a *free* environment (writes can outrun reads arbitrarily): every round
  ends with a longer counterexample — the honest outcome the paper's
  clock-masking/backpressure fallback exists for.

Run:  python examples/buffer_sizing.py
"""

from repro.designs import modular_producer_consumer
from repro.desync import verified_buffer_sizes
from repro.sim import stimuli


def simulation_data():
    """The designer's initial test bench: bursts of 2, reads every 2nd."""
    return stimuli.merge(
        stimuli.bursty("p_act", burst=2, gap=2),
        stimuli.periodic("x_rreq", 2),
    )


def program():
    """Lint entry point (``repro lint examples/buffer_sizing.py``)."""
    return modular_producer_consumer(modulus=2)


def main():
    program = modular_producer_consumer(modulus=2)

    print("== environment A: reader polls every instant ==")
    polled = [
        {"x_rreq": True},
        {"p_act": True, "x_rreq": True},
    ]
    result = verified_buffer_sizes(
        program, simulation_data, horizon=60, alphabet=polled
    )
    print(result.render())

    print("\n== environment B: free (writes can outrun reads) ==")
    free = [
        {},
        {"p_act": True},
        {"x_rreq": True},
        {"p_act": True, "x_rreq": True},
    ]
    result = verified_buffer_sizes(
        program, simulation_data, horizon=60, alphabet=free, max_rounds=2
    )
    print(result.render())
    print("\nsurviving counterexample (as the paper predicts, a free")
    print("environment can overflow any finite buffer):")
    print(result.counterexample.render())
    print("\n-> for such environments the paper prescribes masking the")
    print("   producer's clock (backpressure) or switching service levels;")
    print("   see examples/avionics_pipeline.py (policy='block') and")
    print("   repro.gals.service.RateController.")


if __name__ == "__main__":
    main()
